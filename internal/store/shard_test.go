package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsd"
)

// shardNames returns nshards relation names such that name i homes on
// shard i — test fixtures place one relation per shard deterministically.
func shardNames(nshards int) []string {
	names := make([]string, nshards)
	for i := range names {
		for j := 0; ; j++ {
			name := fmt.Sprintf("T%d_%d", i, j)
			if shardOfName(name, nshards) == i {
				names[i] = name
				break
			}
		}
	}
	return names
}

// insInto stages "insert v into table" on tx: certain-tuple insert, the
// shape of the session's native DML, logged as "ins <table> <v>".
func insInto(tx *Tx, table string, v int) error {
	tx.Log(fmt.Sprintf("ins %s %d", table, v))
	db := tx.DB()
	i := db.IndexOf(table)
	if i < 0 {
		return fmt.Errorf("no relation %q", table)
	}
	nr := db.Certain[i].Clone()
	nr.Insert(relation.Tuple{value.Int(int64(v))})
	tx.SetDB(db.WithCertain(i, nr).Normalize())
	return nil
}

// mkTable stages "create table name" on tx, logged as "mk <name>".
func mkTable(tx *Tx, name string) error {
	tx.Log("mk " + name)
	tx.SetDB(tx.DB().WithRelation(name, relation.NewSchema("X"), nil))
	return nil
}

// shardApplier replays the "mk <name>" / "ins <table> <v>" records the
// sharded tests log — the store-level stand-in for isql.ReplayRecord.
// "ins" creates the relation when absent so any filtered subset of a
// crash sweep replays deterministically.
func shardApplier(cat *Catalog, rec WALRecord) error {
	txn := cat.Begin()
	for _, stmt := range rec.Stmts {
		f := strings.Fields(stmt)
		var err error
		switch f[0] {
		case "mk":
			err = txn.UpdateRouted(nil, func(tx *Tx) error { return mkTable(tx, f[1]) })
		case "ins":
			v, _ := strconv.Atoi(f[2])
			err = txn.UpdateRouted([]string{f[1]}, func(tx *Tx) error {
				if tx.DB().IndexOf(f[1]) < 0 {
					if err := mkTable(tx, f[1]); err != nil {
						return err
					}
				}
				return insInto(tx, f[1], v)
			})
		default:
			err = fmt.Errorf("unknown test statement %q", stmt)
		}
		if err != nil {
			txn.Rollback()
			return err
		}
	}
	return txn.Commit()
}

// dbBytes serializes a snapshot's database content without the version
// stamp, for byte-identity comparison across differently numbered
// histories.
func dbBytes(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	return saveBytes(t, &Snapshot{DB: snap.DB, Views: snap.Views})
}

func newShardedFixture(t *testing.T, nshards int) (*Catalog, []string) {
	t.Helper()
	names := shardNames(nshards)
	rels := make([]*relation.Relation, len(names))
	for i := range rels {
		rels[i] = relation.New(relation.NewSchema("X"))
	}
	c := NewSharded(wsd.FromComplete(names, rels), nshards)
	return c, names
}

// TestRoutedCommitAdvancesOneShard: a single-table commit bumps only
// its home shard's version; the other shards' read timestamps are
// untouched, which is what lets disjoint committers skip each other.
func TestRoutedCommitAdvancesOneShard(t *testing.T) {
	c, names := newShardedFixture(t, 4)
	before := c.ShardStats()
	err := c.UpdateRouted([]string{names[2]}, func(tx *Tx) error { return insInto(tx, names[2], 7) })
	if err != nil {
		t.Fatal(err)
	}
	after := c.ShardStats()
	for i := range after {
		if i == 2 {
			if after[i].Version <= before[i].Version || after[i].Commits != before[i].Commits+1 {
				t.Fatalf("home shard stats unchanged: %+v -> %+v", before[i], after[i])
			}
			continue
		}
		if after[i].Version != before[i].Version || after[i].Commits != before[i].Commits {
			t.Fatalf("shard %d moved on a foreign commit: %+v -> %+v", i, before[i], after[i])
		}
	}
	snap := c.Snapshot()
	if got := snap.DB.Certain[snap.DB.IndexOf(names[2])].Len(); got != 1 {
		t.Fatalf("inserted tuple missing: len %d", got)
	}
}

// TestShardedDisjointWritersParallel: writers on distinct shards commit
// concurrently; every commit lands, the merged snapshot holds all of
// them, and per-shard commit counters attribute them correctly.
func TestShardedDisjointWritersParallel(t *testing.T) {
	const perWriter = 50
	c, names := newShardedFixture(t, 4)
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for w := range names {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				err := c.UpdateRouted([]string{names[w]}, func(tx *Tx) error {
					return insInto(tx, names[w], k)
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	snap := c.Snapshot()
	for w, name := range names {
		if got := snap.DB.Certain[snap.DB.IndexOf(name)].Len(); got != perWriter {
			t.Fatalf("relation %s (writer %d) has %d tuples, want %d", name, w, got, perWriter)
		}
	}
	for i, st := range c.ShardStats() {
		if st.Commits != perWriter {
			t.Fatalf("shard %d counted %d commits, want %d", i, st.Commits, perWriter)
		}
		if st.Conflicts != 0 {
			t.Fatalf("shard %d reported %d conflicts on a disjoint workload", i, st.Conflicts)
		}
	}
}

// TestStagedDisjointShardsNoConflict: a staged transaction writing
// shard A commits after an interloper committed on shard B — under
// shard-level validation the disjoint interloper is not a conflict.
// The same interleaving on one shard still conflicts.
func TestStagedDisjointShardsNoConflict(t *testing.T) {
	c, names := newShardedFixture(t, 4)
	txn := c.Begin()
	if err := txn.UpdateRouted([]string{names[0]}, func(tx *Tx) error { return insInto(tx, names[0], 1) }); err != nil {
		t.Fatal(err)
	}
	// Interloper on a different shard.
	if err := c.UpdateRouted([]string{names[3]}, func(tx *Tx) error { return insInto(tx, names[3], 2) }); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("disjoint interloper caused a conflict: %v", err)
	}
	snap := c.Snapshot()
	if snap.DB.Certain[snap.DB.IndexOf(names[0])].Len() != 1 || snap.DB.Certain[snap.DB.IndexOf(names[3])].Len() != 1 {
		t.Fatal("one of the disjoint commits is missing")
	}

	txn2 := c.Begin()
	if err := txn2.UpdateRouted([]string{names[0]}, func(tx *Tx) error { return insInto(tx, names[0], 3) }); err != nil {
		t.Fatal(err)
	}
	// Interloper on the SAME shard: first committer wins.
	if err := c.UpdateRouted([]string{names[0]}, func(tx *Tx) error { return insInto(tx, names[0], 4) }); err != nil {
		t.Fatal(err)
	}
	err := txn2.Commit()
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("same-shard interloper: want *ConflictError, got %v", err)
	}
	found := false
	for _, st := range c.ShardStats() {
		if st.Conflicts > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("conflict not attributed to any shard")
	}
}

// TestStagedReadShardValidated: a transaction that only READ a shard
// conflicts when that shard moves before commit — reads are part of the
// validation set, keeping staged transactions serializable rather than
// merely write-consistent.
func TestStagedReadShardValidated(t *testing.T) {
	c, names := newShardedFixture(t, 4)
	txn := c.Begin()
	txn.MarkReads(map[string]bool{names[1]: true})
	if err := txn.UpdateRouted([]string{names[0]}, func(tx *Tx) error { return insInto(tx, names[0], 1) }); err != nil {
		t.Fatal(err)
	}
	// Interloper commits on the READ shard.
	if err := c.UpdateRouted([]string{names[1]}, func(tx *Tx) error { return insInto(tx, names[1], 9) }); err != nil {
		t.Fatal(err)
	}
	err := txn.Commit()
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("stale read shard: want *ConflictError, got %v", err)
	}
}

// TestCrossShardComponentRoutes: a component spanning relations homed on
// two shards pulls both shards into any route touching either relation,
// so a routed DML that rewrites the component can never tear it.
func TestCrossShardComponentRoutes(t *testing.T) {
	names := shardNames(4)
	rels := make([]*relation.Relation, len(names))
	for i := range rels {
		rels[i] = relation.New(relation.NewSchema("X"))
	}
	db := wsd.FromComplete(names, rels)
	// One component contributing to relations 0 and 1 (shards 0 and 1).
	alt := func(vals map[int]int) wsd.DBAlternative {
		m := map[int]*relation.Relation{}
		for ri, v := range vals {
			m[ri] = relation.FromRows(relation.NewSchema("X"), relation.Tuple{value.Int(int64(v))})
		}
		return wsd.DBAlternative{Rels: m}
	}
	db.Components = append(db.Components, wsd.DBComponent{Alternatives: []wsd.DBAlternative{
		alt(map[int]int{0: 1, 1: 10}),
		alt(map[int]int{0: 2, 1: 20}),
	}})
	c := NewSharded(db, 4)
	ps := c.refShards(c.Snapshot().DB, []string{names[0]})
	if len(ps) != 2 || ps[0] != 0 || ps[1] != 1 {
		t.Fatalf("route of %s = %v, want [0 1] (component closure)", names[0], ps)
	}
	// A routed delete on relation 0 that rewrites the component commits
	// through the multi-shard path and stays consistent: alternatives
	// keep pairing 2 with 20.
	err := c.UpdateRouted([]string{names[0]}, func(tx *Tx) error {
		tx.Log("del")
		db := tx.DB()
		next, err := db.MapRelation(0, func(r *relation.Relation) (*relation.Relation, error) {
			nr := relation.New(r.Schema())
			r.Each(func(t relation.Tuple) {
				if t[0] != value.Int(1) {
					nr.Insert(t)
				}
			})
			return nr, nil
		})
		if err != nil {
			return err
		}
		tx.SetDB(next.Normalize())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	ws, err := snap.DB.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws.Worlds() {
		has := func(ri, v int) bool { return w[ri].Contains(relation.Tuple{value.Int(int64(v))}) }
		if has(0, 2) != has(1, 20) {
			t.Fatalf("torn component: world pairs 2-with-20 broken\n%v", w)
		}
	}
}

// TestMergeComponentsSnapshotRace: a reader merging components that
// span shards, racing commits that rewrite those same components, must
// see only its immutable snapshot — the merge result is byte-identical
// to the serial merge of the same snapshot, every iteration, under
// -race. This is the cross-shard snapshot-isolation guarantee for
// wsd.MergeComponents.
func TestMergeComponentsSnapshotRace(t *testing.T) {
	names := shardNames(4)
	rels := make([]*relation.Relation, len(names))
	for i := range rels {
		rels[i] = relation.New(relation.NewSchema("X"))
	}
	db := wsd.FromComplete(names, rels)
	alt1 := func(ri, v int) wsd.DBAlternative {
		return wsd.DBAlternative{Rels: map[int]*relation.Relation{
			ri: relation.FromRows(relation.NewSchema("X"), relation.Tuple{value.Int(int64(v))})}}
	}
	// Component 0 on shard 0's relation, component 1 on shard 1's: the
	// merge spans shards.
	db.Components = append(db.Components,
		wsd.DBComponent{Alternatives: []wsd.DBAlternative{alt1(0, 1), alt1(0, 2)}},
		wsd.DBComponent{Alternatives: []wsd.DBAlternative{alt1(1, 10), alt1(1, 20)}},
	)
	c := NewSharded(db, 4)
	snap := c.Snapshot()
	ref, err := wsd.MergeComponents(snap.DB, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	refStr := ref.String()

	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The writer rewrites BOTH merged components (inserting into
		// relations 0 and 1 makes their alternatives' tuples certain and
		// Normalize rewrites the components) plus an unrelated shard.
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			target := names[k%3]
			if err := c.UpdateRouted([]string{target}, func(tx *Tx) error {
				return insInto(tx, target, 100+k)
			}); err != nil {
				writerErr = err
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		merged, err := wsd.MergeComponents(snap.DB, []int{0, 1})
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got := merged.String(); got != refStr {
			t.Fatalf("iteration %d: racing merge differs from serial merge of the same snapshot\n--- got ---\n%s\n--- want ---\n%s", i, got, refStr)
		}
	}
	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}
}

// TestShardedWALGroupCommitPerShard: durable sharded catalog; commits
// on one shard coalesce fsyncs on that shard's segment while another
// shard's segment syncs independently.
func TestShardedWALGroupCommitPerShard(t *testing.T) {
	dir := t.TempDir()
	cat, wals, err := OpenSharded("", dir, 4, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range wals {
			w.Close()
		}
	}()
	names := shardNames(4)
	for _, n := range names {
		if err := cat.UpdateRouted(nil, func(tx *Tx) error { return mkTable(tx, n) }); err != nil {
			t.Fatal(err)
		}
	}
	const writers, per = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := names[w%len(names)]
			for k := 0; k < per; k++ {
				if err := cat.UpdateRouted([]string{name}, func(tx *Tx) error {
					return insInto(tx, name, w*per+k)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := dbBytes(t, cat.Snapshot())
	wantVer := cat.Snapshot().Version

	// Crash (drop the segments without checkpointing) and recover.
	for _, w := range wals {
		w.Close()
	}
	cat2, wals2, err := OpenSharded("", dir, 4, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range wals2 {
			w.Close()
		}
	}()
	if got := dbBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatalf("recovered catalog differs from pre-crash state\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if got := cat2.Snapshot().Version; got != wantVer {
		t.Fatalf("recovered version %d, want last durable epoch %d", got, wantVer)
	}
}

// copyDir duplicates a WAL directory for destructive truncation.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(src + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst+"/"+e.Name(), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedCrashSweepEveryCutPoint is the sharded crash-recovery
// acceptance sweep: run a workload mixing single-shard commits, an
// all-shard DDL and a cross-shard staged transaction over per-shard
// segments, then for every segment and every torn-tail cut point (each
// line boundary and mid-line) recover the truncated directory and
// require the result byte-identical to an independent deterministic
// replay of the surviving epochs — including the cut that severs the
// cross-shard commit marker, which must roll the transaction back on
// every shard.
func TestShardedCrashSweepEveryCutPoint(t *testing.T) {
	const nshards = 4
	dir := t.TempDir()
	cat, wals, err := OpenSharded("", dir, nshards, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	names := shardNames(nshards)
	for _, n := range names {
		if err := cat.UpdateRouted(nil, func(tx *Tx) error { return mkTable(tx, n) }); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 3; k++ {
		for _, n := range names {
			n := n
			if err := cat.UpdateRouted([]string{n}, func(tx *Tx) error { return insInto(tx, n, k) }); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Cross-shard staged transaction, the LAST commit: truncating the
	// coordinator's marker simulates a crash mid two-phase publish.
	txn := cat.Begin()
	if err := txn.UpdateRouted([]string{names[0]}, func(tx *Tx) error { return insInto(tx, names[0], 777) }); err != nil {
		t.Fatal(err)
	}
	if err := txn.UpdateRouted([]string{names[2]}, func(tx *Tx) error { return insInto(tx, names[2], 888) }); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, w := range wals {
		w.Close()
	}

	for si := 0; si < nshards; si++ {
		data, err := os.ReadFile(SegmentPath(dir, si))
		if err != nil {
			t.Fatal(err)
		}
		// Every line boundary, plus a point inside each line.
		cuts := []int{0}
		for off, b := range data {
			if b == '\n' {
				cuts = append(cuts, off+1)
				if off+1 < len(data) {
					cuts = append(cuts, off+3) // mid next line: torn record
				}
			}
		}
		for _, cut := range cuts {
			if cut > len(data) {
				continue
			}
			cdir := fmt.Sprintf("%s-s%d-c%d", dir, si, cut)
			copyDir(t, dir, cdir)
			if err := os.WriteFile(SegmentPath(cdir, si), data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			rec, rwals, err := OpenSharded("", cdir, nshards, shardApplier)
			if err != nil {
				t.Fatalf("shard %d cut %d: recovery failed: %v", si, cut, err)
			}
			got := dbBytes(t, rec.Snapshot())
			want, lastEpoch := sweepReference(t, cdir, nshards)
			if !bytes.Equal(got, want) {
				t.Fatalf("shard %d cut %d: recovery differs from deterministic replay\n--- got ---\n%s\n--- want ---\n%s", si, cut, got, want)
			}
			if lastEpoch > 0 && rec.Snapshot().Version != lastEpoch {
				t.Fatalf("shard %d cut %d: recovered version %d, want %d", si, cut, rec.Snapshot().Version, lastEpoch)
			}
			// Atomicity of the cross-shard tail: 777 and 888 appear
			// together or not at all.
			db := rec.Snapshot().DB
			h7 := db.IndexOf(names[0]) >= 0 && db.Certain[db.IndexOf(names[0])].Contains(relation.Tuple{value.Int(777)})
			h8 := db.IndexOf(names[2]) >= 0 && db.Certain[db.IndexOf(names[2])].Contains(relation.Tuple{value.Int(888)})
			if h7 != h8 {
				t.Fatalf("shard %d cut %d: torn cross-shard commit (777=%v, 888=%v)", si, cut, h7, h8)
			}
			for _, w := range rwals {
				w.Close()
			}
			os.RemoveAll(cdir)
		}
	}
}

// sweepReference independently computes the state recovery must produce
// from a (possibly truncated) segment directory: scan each segment,
// merge records by epoch, drop cross-shard epochs without a marker,
// replay ascending onto a fresh sharded catalog. A deliberate
// reimplementation of the recovery contract, not a call into it.
func sweepReference(t *testing.T, dir string, nshards int) ([]byte, uint64) {
	t.Helper()
	type er struct {
		stmts  []string
		parts  []int
		marked bool
	}
	epochs := map[uint64]*er{}
	for si := 0; si < nshards; si++ {
		w, recs, err := OpenWAL(SegmentPath(dir, si))
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		for _, rec := range recs {
			e := epochs[rec.Version]
			if e == nil {
				e = &er{}
				epochs[rec.Version] = e
			}
			if rec.Marker {
				e.marked = true
			} else {
				e.stmts = rec.Stmts
				e.parts = rec.Parts
			}
		}
	}
	var order []uint64
	for v, e := range epochs {
		if len(e.parts) > 1 && !e.marked {
			continue
		}
		if len(e.stmts) == 0 {
			continue
		}
		order = append(order, v)
	}
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	ref := NewSharded(nil, nshards)
	for _, v := range order {
		if err := shardApplier(ref, WALRecord{Version: v, Stmts: epochs[v].stmts}); err != nil {
			t.Fatalf("reference replay of e%d: %v", v, err)
		}
	}
	var last uint64
	if len(order) > 0 {
		last = order[len(order)-1]
	}
	return dbBytes(t, ref.Snapshot()), last
}

// TestCheckpointAllTruncatesSegments: CheckpointAll persists the merged
// snapshot and truncates every segment; recovery from the checkpoint
// alone reproduces the state.
func TestCheckpointAllTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	wsdPath := dir + "/checkpoint.wsd"
	cat, wals, err := OpenSharded(wsdPath, dir, 2, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	names := shardNames(2)
	for _, n := range names {
		if err := cat.UpdateRouted(nil, func(tx *Tx) error { return mkTable(tx, n) }); err != nil {
			t.Fatal(err)
		}
		n := n
		if err := cat.UpdateRouted([]string{n}, func(tx *Tx) error { return insInto(tx, n, 1) }); err != nil {
			t.Fatal(err)
		}
	}
	want := dbBytes(t, cat.Snapshot())
	if err := cat.CheckpointAll(wsdPath); err != nil {
		t.Fatal(err)
	}
	for si := range wals {
		if fi, err := os.Stat(SegmentPath(dir, si)); err != nil || fi.Size() != 0 {
			t.Fatalf("segment %d not truncated after checkpoint (err %v)", si, err)
		}
	}
	for _, w := range wals {
		w.Close()
	}
	cat2, wals2, err := OpenSharded(wsdPath, dir, 2, shardApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range wals2 {
			w.Close()
		}
	}()
	if got := dbBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("checkpoint-only recovery differs from checkpointed state")
	}
}
