// Package store is the decomposition-native catalog: named tables
// backed by a multi-relation world-set decomposition (wsd.DecompDB)
// with copy-on-write snapshots under MVCC-style versioning. It is the
// session state the paper's decompose → query → recompose loop runs on:
// data stays factored across statements, queries evaluate against an
// immutable catalog version, and writers commit new versions atomically.
//
// # Concurrency model
//
// A Catalog holds an atomically swapped pointer to the current
// Snapshot. Readers call Snapshot and evaluate against it for as long
// as they like — wait-free, never blocked by writers, and guaranteed a
// consistent catalog version (relations inside a snapshot are immutable
// by convention, enforced by the copy-on-write editing operations of
// wsd.DecompDB). Writers serialize through Update, which runs a
// single-writer transaction against the latest snapshot and publishes
// the staged state as a new version; the version chain gives concurrent
// I-SQL sessions (cmd/isqld) snapshot isolation with a single atomic
// pointer load per statement.
//
// # Queries
//
// Query evaluates a compiled World-set Algebra expression against a
// snapshot through any engine in the wsa registry, preferring the
// factorized wsdexec engine, which runs directly on the decomposition.
// Registry engines that need explicit world-sets get a budget-guarded
// expansion (surfacing wsd.BudgetError, the same error shape the
// session and Expand report) and their output is re-factorized with
// wsd.Refactor, so even a fallback step hands the next statement a
// decomposition, not an enumeration.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

// Snapshot is one immutable catalog version: the decomposition holding
// every named table, plus the view definitions (name → select text).
// Neither the decomposition nor the view map may be mutated; editing
// happens by committing a new version through Catalog.Update.
type Snapshot struct {
	// Version increases by one per committed transaction.
	Version uint64
	// DB is the decomposition backing all named tables.
	DB *wsd.DecompDB
	// Views maps view names to their I-SQL select text.
	Views map[string]string
}

// HasRelation reports whether a table or view of that name exists.
func (s *Snapshot) HasRelation(name string) bool {
	if _, ok := s.Views[name]; ok {
		return true
	}
	return s.DB.IndexOf(name) >= 0
}

// Catalog is a versioned, concurrently readable store of named tables
// backed by a world-set decomposition. The zero value is not usable;
// construct with New.
type Catalog struct {
	writer sync.Mutex
	cur    atomic.Pointer[Snapshot]
	// logger, when set, receives every committed transaction's statement
	// records before the new version becomes visible (write-ahead).
	logger TxLogger
}

// TxLogger receives committed transactions for durability. AppendCommit
// is called under the catalog writer lock, before the new version is
// published; an error aborts the commit. The store's WAL implements it.
type TxLogger interface {
	AppendCommit(version uint64, stmts []string) error
}

// SetLogger attaches a commit logger (typically a WAL). Pass nil to
// detach. Must not be called while transactions are in flight on other
// goroutines; cmd wiring attaches the logger once at startup, after
// recovery replay.
func (c *Catalog) SetLogger(l TxLogger) {
	c.writer.Lock()
	defer c.writer.Unlock()
	c.logger = l
}

// New returns a catalog whose first version holds the given
// decomposition. A nil db means the empty complete database (one world,
// no relations). The decomposition is adopted, not copied: the caller
// must not mutate it afterwards.
func New(db *wsd.DecompDB) *Catalog {
	if db == nil {
		db = wsd.NewDecompDB(nil, nil)
	}
	c := &Catalog{}
	c.cur.Store(&Snapshot{Version: 1, DB: db, Views: map[string]string{}})
	return c
}

// FromComplete returns a catalog over the singleton world-set of a
// complete database.
func FromComplete(names []string, rels []*relation.Relation) *Catalog {
	return New(wsd.FromComplete(names, rels))
}

// Snapshot returns the current catalog version. Wait-free; the result
// is immutable and remains valid (and consistent) regardless of later
// commits.
func (c *Catalog) Snapshot() *Snapshot { return c.cur.Load() }

// Tx is a single-writer transaction: staged edits against the latest
// snapshot. Obtain one through Update.
type Tx struct {
	base  *Snapshot
	db    *wsd.DecompDB     // staged decomposition; nil = unchanged
	views map[string]string // staged view map; nil = unchanged
	stmts []string          // statement records for the commit log
}

// Log records the statement text that produced the staged edits, so a
// commit logger (WAL) can persist the transaction as replayable
// statements. Call once per executed statement.
func (tx *Tx) Log(stmt string) { tx.stmts = append(tx.stmts, stmt) }

// Snap returns the snapshot the transaction started from (the latest
// committed version; no writer can interleave).
func (tx *Tx) Snap() *Snapshot { return tx.base }

// DB returns the staged decomposition, or the base snapshot's if none
// was staged yet. Callers must treat it as immutable and stage changes
// with SetDB.
func (tx *Tx) DB() *wsd.DecompDB {
	if tx.db != nil {
		return tx.db
	}
	return tx.base.DB
}

// Views returns the staged view map (base snapshot's when unchanged).
// Callers must not mutate it.
func (tx *Tx) Views() map[string]string {
	if tx.views != nil {
		return tx.views
	}
	return tx.base.Views
}

// SetDB stages a new decomposition for commit.
func (tx *Tx) SetDB(db *wsd.DecompDB) { tx.db = db }

// SetView stages a view definition.
func (tx *Tx) SetView(name, sql string) {
	tx.cowViews()
	tx.views[name] = sql
}

// DropView stages the removal of a view.
func (tx *Tx) DropView(name string) {
	tx.cowViews()
	delete(tx.views, name)
}

func (tx *Tx) cowViews() {
	if tx.views == nil {
		tx.views = make(map[string]string, len(tx.base.Views)+1)
		for k, v := range tx.base.Views {
			tx.views[k] = v
		}
	}
}

// Update runs fn as the single writer against the latest snapshot and,
// if fn succeeds and staged anything, atomically publishes the staged
// state as a new catalog version. On error nothing is published.
// Readers holding older snapshots are unaffected either way. When a
// commit logger is attached, the transaction's statement records are
// appended (and fsynced) to it before the version becomes visible; a
// logging failure aborts the commit.
func (c *Catalog) Update(fn func(*Tx) error) error {
	c.writer.Lock()
	defer c.writer.Unlock()
	tx := &Tx{base: c.cur.Load()}
	if err := fn(tx); err != nil {
		return err
	}
	if tx.db == nil && tx.views == nil {
		return nil
	}
	next := &Snapshot{
		Version: tx.base.Version + 1,
		DB:      tx.DB(),
		Views:   tx.Views(),
	}
	if c.logger != nil {
		if err := c.logger.AppendCommit(next.Version, tx.stmts); err != nil {
			return fmt.Errorf("store: logging commit v%d: %w", next.Version, err)
		}
	}
	c.cur.Store(next)
	return nil
}

// Query evaluates a compiled World-set Algebra query against the
// snapshot and returns the snapshot's decomposition extended with the
// answer relation (named wsa.AnswerName), plus the plan describing how
// it ran. An empty engine name (or "wsdexec") runs the factorized
// engine natively on the decomposition — entangling operators fall back
// internally over the budget-guarded expansion and the enumerated
// output is re-factorized. Any other name from the wsa engine registry
// evaluates on the expanded world-set (budget-guarded, 0 = default) and
// the result is re-factorized with wsd.Refactor, so the catalog stays
// decomposed whichever engine answered.
func Query(snap *Snapshot, engine string, q wsa.Expr, budget int) (*wsd.DecompDB, *wsdexec.Plan, error) {
	return QueryOpts(snap, engine, q, &wsdexec.Options{ExpandBudget: budget})
}

// QueryOpts is Query with explicit factorized-engine options — the
// prepared-statement path passes NoRewrite because its cached plans are
// already prelowered at compile time, so per-request evaluation skips
// the rewrite search entirely.
func QueryOpts(snap *Snapshot, engine string, q wsa.Expr, opt *wsdexec.Options) (*wsd.DecompDB, *wsdexec.Plan, error) {
	if engine == "" || engine == "wsdexec" {
		return wsdexec.EvalOpts(q, snap.DB, opt)
	}
	plan := &wsdexec.Plan{
		FallbackOp:     "engine override",
		FallbackEngine: engine,
		InputWorlds:    snap.DB.Worlds(),
	}
	budget := 0
	if opt != nil {
		budget = opt.ExpandBudget
	}
	ws, err := snap.DB.Expand(budget)
	if err != nil {
		return nil, nil, fmt.Errorf("store: engine %q needs explicit worlds: %w", engine, err)
	}
	out, err := wsa.EvalWith(engine, q, ws)
	if err != nil {
		return nil, nil, err
	}
	db, err := wsd.Refactor(out)
	if err != nil {
		return nil, nil, err
	}
	return db, plan, nil
}
