// Package store is the decomposition-native catalog: named tables
// backed by a multi-relation world-set decomposition (wsd.DecompDB)
// with copy-on-write snapshots under MVCC-style versioning. It is the
// session state the paper's decompose → query → recompose loop runs on:
// data stays factored across statements, queries evaluate against an
// immutable catalog version, and writers commit new versions atomically.
//
// # Concurrency model
//
// A Catalog holds an atomically swapped pointer to the current
// Snapshot. Readers call Snapshot and evaluate against it for as long
// as they like — wait-free, never blocked by writers, and guaranteed a
// consistent catalog version (relations inside a snapshot are immutable
// by convention, enforced by the copy-on-write editing operations of
// wsd.DecompDB). Writers serialize through Update, which runs a
// single-writer transaction against the latest snapshot and publishes
// the staged state as a new version; the version chain gives concurrent
// I-SQL sessions (cmd/isqld) snapshot isolation with a single atomic
// pointer load per statement.
//
// # Queries
//
// Query evaluates a compiled World-set Algebra expression against a
// snapshot through any engine in the wsa registry, preferring the
// factorized wsdexec engine, which runs directly on the decomposition.
// Registry engines that need explicit world-sets get a budget-guarded
// expansion (surfacing wsd.BudgetError, the same error shape the
// session and Expand report) and their output is re-factorized with
// wsd.Refactor, so even a fallback step hands the next statement a
// decomposition, not an enumeration.
//
// # Sharding
//
// Reshard(n) splits the catalog into n component shards, each with its
// own version chain, writer lock, group-commit queue, and WAL segment:
// commits touching disjoint shards run fully in parallel, cross-shard
// transactions commit atomically through a staged two-phase record,
// and readers still get one wait-free merged Snapshot. See shard.go
// for the routing, epoch, and recovery rules.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"worldsetdb/internal/obs"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
	"worldsetdb/internal/wsdexec"
)

// Snapshot is one immutable catalog version: the decomposition holding
// every named table, plus the view definitions (name → select text).
// Neither the decomposition nor the view map may be mutated; editing
// happens by committing a new version through Catalog.Update.
type Snapshot struct {
	// Version increases by one per committed transaction. On a sharded
	// catalog it is the highest commit epoch published so far (epochs
	// are global across shards, so it stays monotone even though shards
	// publish independently).
	Version uint64
	// DB is the decomposition backing all named tables.
	DB *wsd.DecompDB
	// Views maps view names to their I-SQL select text.
	Views map[string]string

	// shardVers, on a sharded catalog, records per shard the epoch of
	// the newest commit included in this snapshot — the read timestamps
	// staged transactions validate against at commit. Nil when the
	// catalog is unsharded.
	shardVers []uint64
	// nshards is the owning catalog's shard count (0 or 1 = unsharded).
	nshards int
	// compID is the catalog's component ID counter at publication.
	// Checkpoints persist it so recovery resumes ID assignment exactly
	// where the writer left off — WAL page-delta records address
	// components by ID, so replay must reproduce the same assignments.
	compID uint64
}

// Stats returns the decomposition statistics of the snapshot's backing
// DB — per-relation certain/alternative cardinality, component counts,
// and the alternatives-per-component histogram. Commit paths normalize
// the decomposition, which pre-fills the cache, so this is a pointer
// load for any snapshot the catalog published; seeds that skipped
// Normalize compute once, lazily, and cache.
func (s *Snapshot) Stats() *wsd.Stats { return s.DB.Stats() }

// HasRelation reports whether a table or view of that name exists.
func (s *Snapshot) HasRelation(name string) bool {
	if _, ok := s.Views[name]; ok {
		return true
	}
	return s.DB.IndexOf(name) >= 0
}

// Catalog is a versioned, concurrently readable store of named tables
// backed by a world-set decomposition. The zero value is not usable;
// construct with New.
//
// With a batch-capable commit logger attached (BatchTxLogger — the
// WAL), commits go through group commit: a committer stages and gets
// its version under the writer lock, enqueues its statement record,
// and releases the lock before the fsync. One committer — the leader —
// drains the queue and persists every waiting record with a single
// write and a single fsync, then publishes the versions in order.
// Under concurrent write load the fsync cost amortizes over the whole
// batch; a lone committer degenerates to exactly the old behavior (one
// record, one fsync). Readers only ever see durable versions: cur
// advances after the fsync, while writers chain on head, the newest
// assigned version.
type Catalog struct {
	writer sync.Mutex
	cur    atomic.Pointer[Snapshot]
	// logger, when set, receives every committed transaction's statement
	// records before the new version becomes visible (write-ahead).
	logger TxLogger

	// head is the newest assigned (possibly not yet durable) version;
	// writers base transactions on it so versions stay sequential while
	// a group commit is in flight. Equal to cur when the queue is idle.
	hmu  sync.Mutex
	head *Snapshot

	// Group-commit queue: commits enqueued under the writer lock, then
	// flushed (one write + one fsync for the whole batch) by a leader
	// outside it.
	qmu      sync.Mutex
	qcond    *sync.Cond // signaled when the flush loop goes idle
	queue    []*commitReq
	flushing bool

	// Component sharding (shard.go). nshards <= 1 leaves every path in
	// this file exactly as it was; nshards > 1 redirects Update through
	// the routed scatter/gather commit paths, with one writer lock, WAL
	// segment and group-commit queue per shard.
	nshards int
	shards  []*shardState
	epoch   atomic.Uint64 // global commit epoch counter
	pub     sync.Mutex    // serializes merged-snapshot publication
	compID  atomic.Uint64 // component ID counter

	// pagers, when paging is enabled (Open/OpenSharded attach them, or
	// EnablePaging for a fresh catalog), hold one paged checkpoint file
	// per shard; Checkpoint/CheckpointAll write incrementally through
	// them instead of rewriting a v1 JSON document.
	pagers []*PageStore

	// noDeltas disables WAL page-delta records (commits then log only
	// their statement texts, and recovery re-executes them) — a bench
	// knob for measuring what delta replay buys; see SetLogDeltas.
	noDeltas bool

	// queueHist measures group-commit queue wait (enqueue to flush
	// start) on the unsharded path; sharded catalogs keep one per shard.
	queueHist obs.Histogram
}

// commitReq is one enqueued commit awaiting durability.
type commitReq struct {
	snap  *Snapshot
	stmts []string
	delta *CommitDelta // page-delta record content; nil = statements only
	done  chan error
	enq   time.Time // when the commit entered the queue
	trace *obs.Span // committer's trace; the flush leader attaches spans
}

// TxLogger receives committed transactions for durability. AppendCommit
// is called under the catalog writer lock, before the new version is
// published; an error aborts the commit. The store's WAL implements it.
type TxLogger interface {
	AppendCommit(version uint64, stmts []string) error
}

// BatchTxLogger is a TxLogger that can persist several committed
// transactions with one append and one fsync. A logger implementing it
// opts the catalog into group commit; the store's WAL does.
type BatchTxLogger interface {
	TxLogger
	AppendBatch(recs []WALRecord) error
}

// SetLogger attaches a commit logger (typically a WAL). Pass nil to
// detach. Must not be called while transactions are in flight on other
// goroutines; cmd wiring attaches the logger once at startup, after
// recovery replay.
func (c *Catalog) SetLogger(l TxLogger) {
	c.writer.Lock()
	defer c.writer.Unlock()
	c.waitFlushed()
	c.logger = l
}

// New returns a catalog whose first version holds the given
// decomposition. A nil db means the empty complete database (one world,
// no relations). The decomposition is adopted, not copied: the caller
// must not mutate it afterwards.
func New(db *wsd.DecompDB) *Catalog {
	if db == nil {
		db = wsd.NewDecompDB(nil, nil)
	}
	return newCatalog(&Snapshot{Version: 1, DB: db, Views: map[string]string{}})
}

// newCatalog builds a catalog publishing snap as its current version.
func newCatalog(snap *Snapshot) *Catalog { return newCatalogSeeded(snap, 0) }

// newCatalogSeeded is newCatalog with the component ID counter resumed
// from a persisted checkpoint, so IDs assigned after recovery continue
// the pre-crash sequence.
func newCatalogSeeded(snap *Snapshot, compID uint64) *Catalog {
	c := &Catalog{head: snap}
	c.qcond = sync.NewCond(&c.qmu)
	c.compID.Store(compID)
	c.assignIDs(snap.DB)
	snap.compID = c.compID.Load()
	c.cur.Store(snap)
	return c
}

// assignIDs gives every component a stable ID: first the counter is
// raised past every ID already present (two passes — a fresh component
// ordered before a high-ID survivor must not be assigned a colliding
// ID), then unassigned components get fresh ones in order. Safe under
// any of the commit locks; the counter is atomic so all-shard and
// routed paths never race it.
func (c *Catalog) assignIDs(db *wsd.DecompDB) {
	for i := range db.Components {
		id := db.Components[i].ID
		for id != 0 {
			cur := c.compID.Load()
			if id <= cur || c.compID.CompareAndSwap(cur, id) {
				break
			}
		}
	}
	for i := range db.Components {
		if db.Components[i].ID == 0 {
			db.Components[i].ID = c.compID.Add(1)
		}
	}
}

// SetLogDeltas toggles WAL page-delta records (default on). With them
// off, commits log only statement texts and recovery re-executes them
// — the pre-paging behavior, kept as a benchmark baseline. Call before
// concurrent use.
func (c *Catalog) SetLogDeltas(on bool) { c.noDeltas = !on }

// headSnap returns the newest assigned version (what the next writer
// must base on). Callers hold the writer lock, so the head cannot be
// reassigned concurrently by another committer — only rolled back by a
// failing flush, which the hmu guards.
func (c *Catalog) headSnap() *Snapshot {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	return c.head
}

// advanceHead moves the writer-visible head from base to next. The
// compare guards a failed-flush race: abort may roll head back to the
// durable version while this committer is between its enqueue and its
// head store — if base is no longer the head, this commit was built on
// an aborted chain (the flusher will fail its queued record as stale)
// and must not resurrect the rolled-back head for later writers to base
// phantom transactions on.
func (c *Catalog) advanceHead(base, next *Snapshot) {
	c.hmu.Lock()
	if c.head == base {
		c.head = next
	}
	c.hmu.Unlock()
}

// FromComplete returns a catalog over the singleton world-set of a
// complete database.
func FromComplete(names []string, rels []*relation.Relation) *Catalog {
	return New(wsd.FromComplete(names, rels))
}

// Snapshot returns the current catalog version. Wait-free; the result
// is immutable and remains valid (and consistent) regardless of later
// commits.
func (c *Catalog) Snapshot() *Snapshot { return c.cur.Load() }

// Tx is a single-writer transaction: staged edits against the latest
// snapshot. Obtain one through Update.
type Tx struct {
	base  *Snapshot
	db    *wsd.DecompDB     // staged decomposition; nil = unchanged
	views map[string]string // staged view map; nil = unchanged
	stmts []string          // statement records for the commit log
	trace *obs.Span         // commit trace root; nil = tracing off
}

// Log records the statement text that produced the staged edits, so a
// commit logger (WAL) can persist the transaction as replayable
// statements. Call once per executed statement.
func (tx *Tx) Log(stmt string) { tx.stmts = append(tx.stmts, stmt) }

// SetTrace attaches a span the commit machinery annotates with its
// durability stages (group-commit queue wait, WAL fsync, cross-shard
// staging and marker). nil leaves the commit untraced.
func (tx *Tx) SetTrace(sp *obs.Span) { tx.trace = sp }

// Trace returns the attached commit span (nil when untraced).
func (tx *Tx) Trace() *obs.Span { return tx.trace }

// Snap returns the snapshot the transaction started from (the latest
// committed version; no writer can interleave).
func (tx *Tx) Snap() *Snapshot { return tx.base }

// DB returns the staged decomposition, or the base snapshot's if none
// was staged yet. Callers must treat it as immutable and stage changes
// with SetDB.
func (tx *Tx) DB() *wsd.DecompDB {
	if tx.db != nil {
		return tx.db
	}
	return tx.base.DB
}

// Views returns the staged view map (base snapshot's when unchanged).
// Callers must not mutate it.
func (tx *Tx) Views() map[string]string {
	if tx.views != nil {
		return tx.views
	}
	return tx.base.Views
}

// SetDB stages a new decomposition for commit.
func (tx *Tx) SetDB(db *wsd.DecompDB) { tx.db = db }

// SetView stages a view definition.
func (tx *Tx) SetView(name, sql string) {
	tx.cowViews()
	tx.views[name] = sql
}

// DropView stages the removal of a view.
func (tx *Tx) DropView(name string) {
	tx.cowViews()
	delete(tx.views, name)
}

func (tx *Tx) cowViews() {
	if tx.views == nil {
		tx.views = make(map[string]string, len(tx.base.Views)+1)
		for k, v := range tx.base.Views {
			tx.views[k] = v
		}
	}
}

// Update runs fn as the single writer against the latest snapshot and,
// if fn succeeds and staged anything, atomically publishes the staged
// state as a new catalog version. On error nothing is published.
// Readers holding older snapshots are unaffected either way. When a
// commit logger is attached, the transaction's statement records are
// appended (and fsynced) to it before the version becomes visible; a
// logging failure aborts the commit. With a batch-capable logger the
// fsync happens outside the writer lock, coalesced across every
// committer waiting at that moment (group commit); Update still returns
// only once its own version is durable and published.
func (c *Catalog) Update(fn func(*Tx) error) error {
	if c.nshards > 1 {
		// No routing information: the commit may touch anything, so it
		// serializes against every shard (DDL, CTAS and legacy DML do).
		return c.updateAll(fn)
	}
	c.writer.Lock()
	locked := true
	defer func() {
		if locked {
			c.writer.Unlock()
		}
	}()
	tx := &Tx{base: c.headSnap()}
	if err := fn(tx); err != nil {
		return err
	}
	if tx.db == nil && tx.views == nil {
		return nil
	}
	next := &Snapshot{
		Version: tx.base.Version + 1,
		DB:      tx.DB(),
		Views:   tx.Views(),
	}
	locked = false
	return c.commitLocked(tx.base, next, tx.stmts, tx.trace)
}

// commitLocked makes next the new catalog version. Called with the
// writer lock held; releases it on every path. Without a batch-capable
// logger the commit is inline and fully under the lock, exactly the
// pre-group-commit behavior. With one, the record is enqueued and the
// lock released before the flush, so concurrent committers coalesce
// into one write + one fsync; commitLocked returns once next is durable
// and visible to readers.
func (c *Catalog) commitLocked(base, next *Snapshot, stmts []string, trace *obs.Span) error {
	c.assignIDs(next.DB)
	next.compID = c.compID.Load()
	bl, group := c.logger.(BatchTxLogger)
	var delta *CommitDelta
	if group && !c.noDeltas {
		sp := trace.Child("wal.delta")
		delta = diffSnapshots(base, next)
		sp.End()
	}
	if !group {
		defer c.writer.Unlock()
		if c.logger != nil {
			sp := trace.Child("wal.append")
			if err := c.logger.AppendCommit(next.Version, stmts); err != nil {
				sp.End()
				return fmt.Errorf("store: logging commit v%d: %w", next.Version, err)
			}
			sp.End()
		}
		c.advanceHead(base, next)
		c.cur.Store(next)
		return nil
	}
	if len(stmts) == 0 {
		// A record with no statements cannot replay to a new version;
		// surface the bug (a writer that never called Tx.Log) at commit
		// time instead of bricking recovery.
		c.writer.Unlock()
		return fmt.Errorf("store: refusing to log commit v%d with no statement records (writer did not call Tx.Log)", next.Version)
	}
	req := &commitReq{snap: next, stmts: stmts, delta: delta, done: make(chan error, 1),
		enq: time.Now(), trace: trace}
	c.qmu.Lock()
	c.queue = append(c.queue, req)
	c.qmu.Unlock()
	c.advanceHead(base, next)
	c.writer.Unlock()
	c.flush(bl)
	return <-req.done
}

// flush elects a leader: the first committer to arrive while no flush
// is running takes the whole queue as one batch — its own record plus
// every committer that queued behind it — and persists it with a
// single fsync; everyone else returns immediately and waits on its own
// done channel. Commits that arrive during the fsync form the next
// batch; its leadership is handed to a fresh goroutine so a committer
// returns as soon as its own record is durable and published, instead
// of staying conscripted as the flusher of later arrivals for as long
// as load lasts.
func (c *Catalog) flush(bl BatchTxLogger) {
	c.qmu.Lock()
	if c.flushing || len(c.queue) == 0 {
		c.qmu.Unlock()
		return
	}
	c.flushing = true
	batch := c.queue
	c.queue = nil
	c.qmu.Unlock()
	c.flushBatch(bl, batch)
	c.qmu.Lock()
	c.flushing = false
	// Wake waiters after every batch: WaitPublished blocks on versions
	// published mid-chain, not only on the queue going idle.
	c.qcond.Broadcast()
	if len(c.queue) > 0 {
		go c.flush(bl)
	}
	c.qmu.Unlock()
}

// WaitPublished blocks until the catalog's durable, reader-visible
// version reaches v, or until no group commit is in flight (the commit
// that would have produced v was aborted — its version number will be
// reused by a later commit). It is an advisory wait: conflict retry
// uses it so a transaction that lost first-committer-wins re-bases on
// the winner's published state instead of spinning its retry budget
// against a version still waiting on the group-commit fsync.
func (c *Catalog) WaitPublished(v uint64) {
	if c.cur.Load().Version >= v {
		return
	}
	if c.nshards > 1 {
		c.waitPublishedSharded(v)
		return
	}
	c.qmu.Lock()
	for c.cur.Load().Version < v && (c.flushing || len(c.queue) > 0) {
		c.qcond.Wait()
	}
	c.qmu.Unlock()
}

// flushBatch persists one drained batch with a single append + fsync
// and publishes its versions in order. Versions are assigned under the
// writer lock and enqueued in order, so a batch is a contiguous run
// starting at cur+1 — except right after a failed flush, when a commit
// staged on the aborted chain may still be draining; those are failed
// without being written.
func (c *Catalog) flushBatch(bl BatchTxLogger, batch []*commitReq) {
	expect := c.cur.Load().Version + 1
	n := 0
	for n < len(batch) && batch[n].snap.Version == expect+uint64(n) {
		n++
	}
	ok, stale := batch[:n], batch[n:]
	if len(ok) > 0 {
		recs := make([]WALRecord, len(ok))
		for i, r := range ok {
			recs[i] = WALRecord{Version: r.snap.Version, Stmts: r.stmts, Delta: r.delta}
		}
		flushStart := time.Now()
		err := bl.AppendBatch(recs)
		flushDur := time.Since(flushStart)
		if err != nil {
			c.abort(batch, fmt.Errorf("store: logging commit batch v%d..v%d: %w",
				recs[0].Version, recs[len(recs)-1].Version, err))
			return
		}
		for _, r := range ok {
			c.queueHist.Observe(flushStart.Sub(r.enq))
			if r.trace != nil {
				// The done-channel send below orders these attaches before
				// the committer reads its trace.
				r.trace.ChildSpan("wal.queue", r.enq, flushStart.Sub(r.enq))
				r.trace.ChildSpan("wal.fsync", flushStart, flushDur).
					SetInt("batch", int64(len(ok)))
			}
			c.cur.Store(r.snap)
			r.done <- nil
		}
	}
	if len(stale) > 0 {
		c.abort(stale, fmt.Errorf("store: commit aborted: it was staged on a version whose log write failed"))
	}
}

// abort fails a set of queued commits after a log-write failure: the
// writer-visible head rolls back to the last durable version so the
// next transaction re-bases, and every commit already staged on the
// aborted chain (the failed batch plus anything queued behind it) gets
// the error. The catalog stays consistent — nothing unlogged was ever
// published — but concurrent commits in flight at the moment of a
// failed fsync fail with it.
func (c *Catalog) abort(failed []*commitReq, err error) {
	c.hmu.Lock()
	c.head = c.cur.Load()
	c.hmu.Unlock()
	c.qmu.Lock()
	trailing := c.queue
	c.queue = nil
	c.qmu.Unlock()
	for _, r := range failed {
		r.done <- err
	}
	for _, r := range trailing {
		r.done <- err
	}
}

// waitFlushed blocks until no group commit is queued or mid-flush. The
// caller holds the writer lock, so no new commit can be enqueued while
// it waits.
func (c *Catalog) waitFlushed() {
	c.qmu.Lock()
	for c.flushing || len(c.queue) > 0 {
		c.qcond.Wait()
	}
	c.qmu.Unlock()
}

// PendingCommits reports how many commits are enqueued for group
// commit but not yet durable (statistics and tests).
func (c *Catalog) PendingCommits() int {
	if c.nshards > 1 {
		n := 0
		for _, sh := range c.shards {
			sh.qmu.Lock()
			n += len(sh.queue)
			sh.qmu.Unlock()
		}
		return n
	}
	c.qmu.Lock()
	defer c.qmu.Unlock()
	return len(c.queue)
}

// Query evaluates a compiled World-set Algebra query against the
// snapshot and returns the snapshot's decomposition extended with the
// answer relation (named wsa.AnswerName), plus the plan describing how
// it ran. An empty engine name (or "wsdexec") runs the factorized
// engine natively on the decomposition — entangling operators fall back
// internally over the budget-guarded expansion and the enumerated
// output is re-factorized. Any other name from the wsa engine registry
// evaluates on the expanded world-set (budget-guarded, 0 = default) and
// the result is re-factorized with wsd.Refactor, so the catalog stays
// decomposed whichever engine answered.
func Query(snap *Snapshot, engine string, q wsa.Expr, budget int) (*wsd.DecompDB, *wsdexec.Plan, error) {
	return QueryOpts(snap, engine, q, &wsdexec.Options{ExpandBudget: budget})
}

// QueryOpts is Query with explicit factorized-engine options — the
// prepared-statement path passes NoRewrite because its cached plans are
// already prelowered at compile time, so per-request evaluation skips
// the rewrite search entirely.
func QueryOpts(snap *Snapshot, engine string, q wsa.Expr, opt *wsdexec.Options) (*wsd.DecompDB, *wsdexec.Plan, error) {
	if engine == "" || engine == "wsdexec" {
		if sh := snap.CompShards(); sh != nil && (opt == nil || opt.Shards == nil) {
			// Scatter/gather on a sharded snapshot: hand the engine the
			// component-to-shard map so its parallel scans chunk along
			// shard boundaries. Copy — opt may be a caller's cached value.
			o := wsdexec.Options{}
			if opt != nil {
				o = *opt
			}
			o.Shards = sh
			opt = &o
		}
		return wsdexec.EvalOpts(q, snap.DB, opt)
	}
	plan := &wsdexec.Plan{
		FallbackOp:     "engine override",
		FallbackEngine: engine,
		InputWorlds:    snap.DB.Worlds(),
	}
	budget := 0
	if opt != nil {
		budget = opt.ExpandBudget
	}
	ws, err := snap.DB.Expand(budget)
	if err != nil {
		return nil, nil, fmt.Errorf("store: engine %q needs explicit worlds: %w", engine, err)
	}
	out, err := wsa.EvalWith(engine, q, ws)
	if err != nil {
		return nil, nil, err
	}
	db, err := wsd.Refactor(out)
	if err != nil {
		return nil, nil, err
	}
	return db, plan, nil
}
