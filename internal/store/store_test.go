package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"

	_ "worldsetdb/internal/physical"  // register the physical engine
	_ "worldsetdb/internal/translate" // register the translated engine
)

func censusCatalog(t testing.TB, n, dups int) *Catalog {
	t.Helper()
	return FromComplete([]string{"Census"}, []*relation.Relation{datagen.Census(n, dups, 7)})
}

// repairQ is cert(repair_SSN(Census)) compiled by hand.
func repairQ() wsa.Expr {
	return wsa.NewCert(&wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}})
}

// TestSnapshotIsolation: a reader holding a snapshot sees the old
// version while a writer commits a new one; new readers see the new
// version.
func TestSnapshotIsolation(t *testing.T) {
	c := censusCatalog(t, 20, 2)
	before := c.Snapshot()
	err := c.Update(func(tx *Tx) error {
		db := tx.DB().WithRelation("Extra", relation.NewSchema("X"),
			relation.FromRows(relation.NewSchema("X"), relation.Tuple{value.Int(1)}))
		tx.SetDB(db)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	if after.Version != before.Version+1 {
		t.Fatalf("version %d after commit, want %d", after.Version, before.Version+1)
	}
	if before.DB.IndexOf("Extra") >= 0 {
		t.Fatal("old snapshot sees the new relation")
	}
	if after.DB.IndexOf("Extra") < 0 {
		t.Fatal("new snapshot misses the committed relation")
	}
}

// TestUpdateErrorPublishesNothing: a failed transaction leaves the
// catalog untouched.
func TestUpdateErrorPublishesNothing(t *testing.T) {
	c := censusCatalog(t, 10, 1)
	before := c.Snapshot()
	boom := errors.New("boom")
	if err := c.Update(func(tx *Tx) error {
		tx.SetDB(tx.DB().WithRelation("Junk", relation.NewSchema("X"), nil))
		tx.SetView("V", "select * from Census;")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := c.Snapshot(); got != before {
		t.Fatal("failed update must not publish a new snapshot")
	}
}

// TestQueryNativeAt2Pow40: the factorized engine answers the census
// repair certain-answer question natively on a 2^40-world catalog.
func TestQueryNativeAt2Pow40(t *testing.T) {
	c := censusCatalog(t, 100, 40)
	snap := c.Snapshot()
	out, plan, err := Query(snap, "", repairQ(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Native {
		t.Fatalf("plan not native: %v", plan)
	}
	k := out.IndexOf(wsa.AnswerName)
	if k < 0 || out.Certain[k].Len() == 0 {
		t.Fatalf("missing certain answers in %s", out)
	}
}

// TestQueryRegistryEngineRefactors: a non-wsdexec engine runs on the
// expansion and its output comes back factored.
func TestQueryRegistryEngineRefactors(t *testing.T) {
	c := censusCatalog(t, 20, 3) // 8 worlds after repair, expandable
	snap := c.Snapshot()
	q := &wsa.Choice{Attrs: []string{"POB"}, From: &wsa.Rel{Name: "Census"}}
	native, _, err := Query(snap, "", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"reference", "physical", "translated"} {
		out, plan, err := Query(snap, engine, q, 0)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if plan.Native {
			t.Fatalf("%s plan claims native", engine)
		}
		a, err := native.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := out.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("engine %s disagrees with wsdexec\nwsdexec:\n%s\n%s:\n%s", engine, a, engine, b)
		}
		if len(out.Components) == 0 {
			t.Fatalf("engine %s output not factored: %s", engine, out)
		}
	}
}

// TestQueryBudgetErrorShape: an engine that must expand a 2^40-world
// catalog reports the shared wsd.BudgetError.
func TestQueryBudgetErrorShape(t *testing.T) {
	d, err := wsd.RepairByKey("Census", datagen.Census(100, 40, 7), []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	c := New(wsd.FromWSD(d)) // 2^40 worlds in the catalog itself
	_, _, err = Query(c.Snapshot(), "physical", &wsa.Rel{Name: "Census"}, 0)
	var be *wsd.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *wsd.BudgetError, got %v", err)
	}
}

// TestConcurrentReadersOneWriter hammers the catalog with concurrent
// snapshot readers during writer commits; every reader must observe a
// consistent version (table count matches the version's expectation).
// Run under -race this is the MVCC correctness test.
func TestConcurrentReadersOneWriter(t *testing.T) {
	c := censusCatalog(t, 30, 4)
	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	q := repairQ()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Snapshot()
				// Within one snapshot, relation count and names agree and
				// queries answer without error.
				if len(snap.DB.Names) != len(snap.DB.Certain) {
					t.Error("inconsistent snapshot")
					return
				}
				if _, _, err := Query(snap, "", q, 0); err != nil {
					t.Errorf("query on snapshot v%d: %v", snap.Version, err)
					return
				}
			}
		}()
	}
	base := c.Snapshot().Version
	for i := 0; i < writers; i++ {
		err := c.Update(func(tx *Tx) error {
			name := fmt.Sprintf("T%d", i)
			tx.SetDB(tx.DB().WithRelation(name, relation.NewSchema("X"), nil))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	final := c.Snapshot()
	if final.Version != base+writers {
		t.Fatalf("final version %d, want %d", final.Version, base+writers)
	}
	if len(final.DB.Names) != 1+writers {
		t.Fatalf("final catalog has %d relations, want %d", len(final.DB.Names), 1+writers)
	}
}

// TestPersistRoundTrip: a factored 2^40-world catalog with views
// round-trips through the .wsd JSON format byte-identically (rendered
// decomposition and re-saved bytes).
func TestPersistRoundTrip(t *testing.T) {
	c := censusCatalog(t, 50, 40)
	// Materialize the repair so the persisted catalog has components.
	if err := c.Update(func(tx *Tx) error {
		out, _, err := Query(tx.Snap(), "", &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}, 0)
		if err != nil {
			return err
		}
		tx.SetDB(out.RenameRelation(out.IndexOf(wsa.AnswerName), "Clean").Normalize())
		tx.SetView("NYC", "select Name from Clean where POB = 'NYC';")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.DB.Worlds().BitLen() != 41 { // 2^40
		t.Fatalf("worlds = %s, want 2^40", snap.DB.Worlds())
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Snapshot()
	if got.Version != snap.Version {
		t.Fatalf("version %d, want %d", got.Version, snap.Version)
	}
	if got.DB.String() != snap.DB.String() {
		t.Fatalf("decomposition differs after round trip\nbefore:\n%s\nafter:\n%s", snap.DB, got.DB)
	}
	if got.Views["NYC"] != snap.Views["NYC"] {
		t.Fatalf("views differ: %v vs %v", got.Views, snap.Views)
	}
	// Certain answers agree before and after.
	a, _, err := Query(snap, "", repairQ(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Query(got, "", repairQ(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := a.IndexOf(wsa.AnswerName), b.IndexOf(wsa.AnswerName)
	if a.Certain[ka].ContentKey() != b.Certain[kb].ContentKey() {
		t.Fatal("certain answers differ after persistence round trip")
	}
	var buf2 bytes.Buffer
	if err := Save(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save → load → save is not byte-stable")
	}
}

// TestValueKindsRoundTrip covers every value kind through persistence.
func TestValueKindsRoundTrip(t *testing.T) {
	schema := relation.NewSchema("A", "B", "C", "D", "E", "F")
	r := relation.FromRows(schema, relation.Tuple{
		value.Null(), value.Bool(true), value.Int(1<<62 + 3),
		value.Float(2.5), value.Str("hello 'world'"), value.Pad(),
	})
	c := New(wsd.FromComplete([]string{"T"}, []*relation.Relation{r}))
	var buf bytes.Buffer
	if err := Save(&buf, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Snapshot().DB.Certain[0]
	if !got.Equal(r) {
		t.Fatalf("values differ after round trip:\n%s\nvs\n%s", got, r)
	}
}
