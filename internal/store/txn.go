package store

import "fmt"

// Staged is a multi-statement transaction: a private chain of staging
// snapshots built from one base catalog version. Statements inside the
// transaction read and write the staging chain only; concurrent readers
// of the catalog keep seeing the pre-transaction version until Commit
// publishes the whole chain as one new catalog version. Obtain one
// through Begin.
//
// Concurrency control is optimistic, first-committer-wins: Begin takes
// no locks, and Commit publishes only if the catalog is still at the
// base version the transaction started from — otherwise it fails with
// *ConflictError and nothing is published (the catalog behaves as if
// the transaction never ran). A Staged value is single-goroutine, like
// the session that owns it.
type Staged struct {
	cat   *Catalog
	base  *Snapshot // catalog version the transaction started from
	cur   *Snapshot // head of the private staging chain
	stmts []string  // statement records for the commit log
	done  bool

	// Shard-level conflict tracking (sharded catalogs): the relations
	// the transaction read and wrote, and whether any statement had no
	// routing information (DDL/CTAS/legacy — validates against every
	// shard). Commit validates that the shards these route to are
	// unchanged since base; commits on disjoint shards don't conflict.
	reads  map[string]bool
	writes map[string]bool
	all    bool
}

// ConflictError reports an optimistic-concurrency failure: another
// writer committed between Begin and Commit.
type ConflictError struct {
	Base    uint64 // catalog version the transaction started from
	Current uint64 // catalog version found at commit time
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("store: transaction conflict: started from version %d, catalog is now at version %d", e.Base, e.Current)
}

// errTxnDone guards against use after Commit/Rollback.
var errTxnDone = fmt.Errorf("store: transaction already committed or rolled back")

// Begin starts a staged transaction from the latest committed version.
func (c *Catalog) Begin() *Staged {
	base := c.cur.Load()
	return &Staged{cat: c, base: base, cur: base}
}

// Snapshot returns the transaction's current staging snapshot: the base
// version plus every statement staged so far. Private to the
// transaction; other readers never see it before Commit.
func (s *Staged) Snapshot() *Snapshot { return s.cur }

// Base returns the committed snapshot the transaction started from.
func (s *Staged) Base() *Snapshot { return s.base }

// UpdateRouted is Update with routing information, mirroring
// Catalog.UpdateRouted so session statements execute identically inside
// and outside a transaction: refs names the relations the statement
// touches (recorded as the transaction's write set for shard-level
// conflict validation at Commit); nil means the statement has no
// routing information and the commit will validate against every shard.
func (s *Staged) UpdateRouted(refs []string, fn func(*Tx) error) error {
	if refs == nil {
		s.all = true
	} else {
		if s.writes == nil {
			s.writes = map[string]bool{}
		}
		for _, r := range refs {
			s.writes[r] = true
		}
	}
	return s.Update(fn)
}

// MarkReads records relations a statement inside the transaction read
// (selects). On a sharded catalog the shards they route to join the
// commit-time validation set, so the transaction stays serializable:
// its reads are revalidated at the commit point, not just its writes.
func (s *Staged) MarkReads(refs map[string]bool) {
	if len(refs) == 0 {
		return
	}
	if s.reads == nil {
		s.reads = map[string]bool{}
	}
	for r := range refs {
		s.reads[r] = true
	}
}

// Update runs fn against the staging head and, if it staged anything,
// extends the private chain with a new staging snapshot. Nothing is
// published to the catalog; versions on the chain are private
// monotonically increasing numbers used by per-statement caches. The
// signature matches Catalog.Update so session statements execute
// identically inside and outside a transaction.
func (s *Staged) Update(fn func(*Tx) error) error {
	if s.done {
		return errTxnDone
	}
	tx := &Tx{base: s.cur}
	if err := fn(tx); err != nil {
		return err
	}
	if tx.db == nil && tx.views == nil {
		return nil
	}
	if tx.views != nil {
		// Views are global, not homed on a shard: a transaction that
		// changes them commits against every shard whatever else it
		// routed (no-op on an unsharded catalog).
		s.all = true
	}
	s.stmts = append(s.stmts, tx.stmts...)
	s.cur = &Snapshot{
		Version: s.cur.Version + 1,
		DB:      tx.DB(),
		Views:   tx.Views(),
	}
	return nil
}

// Commit atomically publishes the staging chain as one new catalog
// version (base version + 1, however many statements were staged). A
// read-only transaction commits trivially. When another writer
// committed since Begin — even one whose version is still awaiting its
// group-commit fsync — Commit fails with *ConflictError and publishes
// nothing. With a commit logger attached, the transaction's statement
// records are appended and fsynced before the version becomes visible;
// a batch-capable logger coalesces that fsync with concurrent
// committers (group commit).
func (s *Staged) Commit() error {
	if s.done {
		return errTxnDone
	}
	s.done = true
	if s.cur == s.base {
		return nil // read-only: nothing staged, nothing to publish
	}
	c := s.cat
	if c.nshards > 1 {
		return s.commitSharded()
	}
	c.writer.Lock()
	if latest := c.headSnap(); latest != s.base {
		c.writer.Unlock()
		return &ConflictError{Base: s.base.Version, Current: latest.Version}
	}
	next := &Snapshot{
		Version: s.base.Version + 1,
		DB:      s.cur.DB,
		Views:   s.cur.Views,
	}
	return c.commitLocked(s.base, next, s.stmts, nil)
}

// Rollback discards the staging chain. The catalog never saw it.
func (s *Staged) Rollback() { s.done = true }

// Stmts returns the transaction's statement records in execution order.
// They survive Commit and Rollback, so a committer that lost
// first-committer-wins can replay the transaction on a fresh base —
// isql's automatic conflict retry does exactly that.
func (s *Staged) Stmts() []string { return append([]string{}, s.stmts...) }
