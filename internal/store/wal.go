package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"worldsetdb/internal/obs"
)

// Statement-level write-ahead log: durability for the catalog without
// whole-snapshot saves. Every committed transaction appends one record
// — the I-SQL statement texts that produced it plus the catalog version
// it committed as — and fsyncs before the version becomes visible
// (Catalog.Update / Staged.Commit call AppendCommit under the writer
// lock). Recovery (Open) loads the last checkpoint — a plain .wsd
// snapshot written atomically — and deterministically re-executes the
// log tail: statement execution is pure, so replaying record v against
// the catalog at version v-1 reproduces version v exactly, byte for
// byte through Save.
//
// # On-disk format
//
// One JSON object per line: {"v":<version>,"stmts":[...],"crc":<sum>},
// where crc is the IEEE CRC-32 of the version and the length-prefixed
// statement texts. A torn tail (crash mid-append) fails the CRC or the
// JSON decode; OpenWAL truncates the file back to the last intact
// record. Checkpointing writes the snapshot with SaveFile (temp file +
// atomic rename) and then truncates the log; records are filtered by
// version on replay, so a crash between those two steps only leaves
// already-checkpointed records that replay skips.

// WALRecord is one committed transaction in the log.
type WALRecord struct {
	// Version is the catalog version (on a sharded catalog: the global
	// commit epoch) the transaction committed as.
	Version uint64
	// Stmts are the statement texts that produced it, in execution order.
	Stmts []string
	// Shard is the shard whose segment holds the record (sharded
	// catalogs only; 0 otherwise).
	Shard int
	// Parts, when the commit spans shards, lists every participant
	// shard. A cross-shard record is staged once per participant
	// segment and is only valid if its epoch's commit marker exists.
	Parts []int
	// Marker marks the commit record of a cross-shard epoch: appended
	// to the coordinator segment after every participant's stage record
	// is durable. A staged cross-shard epoch without its marker is
	// discarded by recovery — the commit rolls back on all shards.
	Marker bool
	// Delta, when present, is the commit's effect on durable state
	// (delta.go); recovery applies it directly instead of re-executing
	// Stmts. Records written before deltas existed replay by statement.
	Delta *CommitDelta

	// deltaRaw is Delta's verbatim JSON as stored on disk — the CRC
	// covers these exact bytes, so a re-marshal can never invalidate a
	// record.
	deltaRaw []byte
}

// walLine is the on-disk framing of a record. The shard fields are
// omitted when empty, so unsharded logs keep the historical format
// byte-for-byte.
type walLine struct {
	Version uint64          `json:"v"`
	Stmts   []string        `json:"stmts"`
	Shard   int             `json:"shard,omitempty"`
	Parts   []int           `json:"parts,omitempty"`
	Marker  bool            `json:"m,omitempty"`
	Delta   json.RawMessage `json:"delta,omitempty"`
	CRC     uint32          `json:"crc"`
}

// crcOf sums the record content: version plus length-prefixed statement
// texts (the prefix keeps ["ab","c"] distinct from ["a","bc"]), plus —
// only when present, so historical records keep their sums — the
// cross-shard participant list and the marker flag.
func crcOf(version uint64, stmts []string) uint32 {
	return crcOfRecord(WALRecord{Version: version, Stmts: stmts})
}

func crcOfRecord(rec WALRecord) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], rec.Version)
	h.Write(buf[:])
	for _, s := range rec.Stmts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		io.WriteString(h, s)
	}
	if len(rec.Parts) > 0 || rec.Marker {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(rec.Parts)))
		h.Write(buf[:])
		for _, p := range rec.Parts {
			binary.LittleEndian.PutUint64(buf[:], uint64(p))
			h.Write(buf[:])
		}
		if rec.Marker {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	if len(rec.deltaRaw) > 0 {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(rec.deltaRaw)))
		h.Write(buf[:])
		h.Write(rec.deltaRaw)
	}
	return h.Sum32()
}

// WAL is an open write-ahead log. It implements TxLogger and
// BatchTxLogger; attached to a catalog with SetLogger it opts commits
// into group commit — the catalog's flush leader persists every
// waiting committer's record with one AppendBatch, one fsync. Safe for
// concurrent use (appends serialize on the WAL mutex; Checkpoint may
// race a commit from another goroutine).
type WAL struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	appended int    // records appended since open or last checkpoint
	tail     int    // records currently in the log (survivors at open + appends)
	syncs    uint64 // fsyncs issued for record appends (not checkpoints)

	// Checkpoint bookkeeping for the durability gauges: the catalog
	// version the last checkpoint persisted and when it completed. Both
	// are zero until the first checkpoint after open.
	lastCkptVer uint64
	lastCkptAt  time.Time

	// fsync measures the latency of each record-append fsync — the
	// durability cost the group-commit leader amortizes. Zero-value
	// usable; exported at isqld /metrics per shard segment.
	fsync obs.Histogram
}

// OpenWAL opens (creating if absent) the log at path and returns the
// intact records it holds. A torn tail — a final record interrupted by
// a crash — is detected by CRC/framing and truncated away so appending
// resumes from the last durable record.
func OpenWAL(path string) (*WAL, []WALRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	records, valid, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if info.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &WAL{f: f, path: path, tail: len(records)}, records, nil
}

// scanWAL reads records from the start of f, stopping (without error)
// at the first torn or corrupt line, and returns the records plus the
// byte length of the intact prefix. Lines are read without a length
// cap: a large committed record must never be mistaken for a torn tail.
func scanWAL(f *os.File) ([]WALRecord, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var records []WALRecord
	var valid int64
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A final line without its newline is a torn append.
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("store: scanning WAL: %w", err)
		}
		var rec walLine
		if err := json.Unmarshal(line[:len(line)-1], &rec); err != nil {
			break // torn or corrupt tail
		}
		decoded := WALRecord{Version: rec.Version, Stmts: rec.Stmts,
			Shard: rec.Shard, Parts: rec.Parts, Marker: rec.Marker, deltaRaw: rec.Delta}
		if rec.CRC != crcOfRecord(decoded) {
			break
		}
		if len(decoded.deltaRaw) > 0 {
			d, err := decodeDelta(decoded.deltaRaw)
			if err != nil {
				break // CRC-intact but undecodable delta: treat as torn
			}
			decoded.Delta = d
		}
		records = append(records, decoded)
		valid += int64(len(line))
	}
	return records, valid, nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// AppendCommit writes one committed transaction and fsyncs. It is the
// TxLogger hook: called before the new version is published. On a
// write or fsync failure the log is truncated back to its pre-append
// length — the commit is being aborted, and a half-durable record must
// not shadow a later successful commit of the same version.
func (w *WAL) AppendCommit(version uint64, stmts []string) error {
	return w.AppendBatch([]WALRecord{{Version: version, Stmts: stmts}})
}

// AppendBatch writes a batch of committed transactions as one append
// and one fsync — the BatchTxLogger hook behind group commit. The
// batch is all-or-nothing from the caller's perspective: on a write or
// fsync failure the log is truncated back to its pre-append length and
// every record in the batch is aborted together. (A crash between the
// write and the fsync can still leave a durable prefix of the batch on
// disk; recovery replays exactly that intact prefix — those commits
// were never acknowledged, and replaying un-acked but durable records
// is indistinguishable from the commit having happened.)
func (w *WAL) AppendBatch(recs []WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: WAL is closed")
	}
	var buf []byte
	for _, rec := range recs {
		if len(rec.Stmts) == 0 && !rec.Marker {
			// A record with no statements cannot replay to a new version;
			// logging it would brick recovery. The caller staged changes
			// without Tx.Log — surface the bug at commit time. (Marker
			// records are the exception: they carry a decision, not
			// statements.)
			return fmt.Errorf("store: refusing to log commit v%d with no statement records (writer did not call Tx.Log)", rec.Version)
		}
		if rec.Delta != nil && len(rec.deltaRaw) == 0 {
			raw, err := json.Marshal(rec.Delta)
			if err != nil {
				return fmt.Errorf("store: encoding commit delta v%d: %w", rec.Version, err)
			}
			rec.deltaRaw = raw
		}
		line, err := json.Marshal(walLine{Version: rec.Version, Stmts: rec.Stmts,
			Shard: rec.Shard, Parts: rec.Parts, Marker: rec.Marker,
			Delta: json.RawMessage(rec.deltaRaw), CRC: crcOfRecord(rec)})
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	base, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	undo := func(cause error) error {
		if terr := w.f.Truncate(base); terr == nil {
			w.f.Seek(base, io.SeekStart)
		}
		return cause
	}
	if _, err := w.f.Write(buf); err != nil {
		return undo(fmt.Errorf("store: appending WAL batch of %d record(s): %w", len(recs), err))
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		return undo(fmt.Errorf("store: fsyncing WAL batch of %d record(s): %w", len(recs), err))
	}
	w.fsync.Observe(time.Since(syncStart))
	w.appended += len(recs)
	w.tail += len(recs)
	w.syncs++
	return nil
}

// FsyncHist exposes the record-append fsync latency histogram.
func (w *WAL) FsyncHist() *obs.Histogram {
	if w == nil {
		return nil
	}
	return &w.fsync
}

// Syncs reports how many fsyncs record appends have issued. With group
// commit, concurrent committers share syncs: Syncs() can be far below
// the number of committed transactions (the amortization wsabench's
// TXN/group-commit ops record).
func (w *WAL) Syncs() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Appended reports the number of records appended since the log was
// opened or last checkpointed (the -checkpoint-every trigger).
func (w *WAL) Appended() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// TailRecords reports the number of records the log currently holds —
// the replay work a crash right now would cost. Unlike Appended it
// counts records that survived the last open, not just new appends.
func (w *WAL) TailRecords() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tail
}

// LastCheckpoint reports the catalog version and completion time of the
// last checkpoint taken through this log (zero values before the
// first). Feeds the wsdb_checkpoint_age_seconds gauge.
func (w *WAL) LastCheckpoint() (uint64, time.Time) {
	if w == nil {
		return 0, time.Time{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastCkptVer, w.lastCkptAt
}

// noteCheckpoint records that a checkpoint at version v completed.
func (w *WAL) noteCheckpoint(v uint64) {
	w.mu.Lock()
	w.lastCkptVer = v
	w.lastCkptAt = time.Now()
	w.mu.Unlock()
}

// Checkpoint persists the snapshot as the new recovery base at wsdPath
// (atomically, via SaveFile's temp-file + rename) and truncates the
// log. Crash safety: replay filters records by version, so dying
// between the save and the truncate merely leaves records the next
// Open skips. The caller must ensure no commit is logged between the
// snapshot read and this call — use Catalog.Checkpoint, which holds the
// writer lock, when writers may be live.
func (w *WAL) Checkpoint(snap *Snapshot, wsdPath string) error {
	if err := SaveFile(wsdPath, snap); err != nil {
		return fmt.Errorf("store: writing checkpoint: %w", err)
	}
	if err := w.reset(); err != nil {
		return err
	}
	w.noteCheckpoint(snap.Version)
	return nil
}

// reset truncates the log to empty after a checkpoint save.
func (w *WAL) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: WAL is closed")
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating WAL after checkpoint: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.appended = 0
	w.tail = 0
	return nil
}

// Checkpoint writes the catalog's current snapshot as the new recovery
// base and truncates the WAL, under the writer lock so no commit can be
// appended (and then lost to the truncate) between the snapshot read
// and the log reset. Group commits still in flight are drained first —
// their records must land in the log (and their versions in cur) before
// the snapshot is taken, or the truncate would orphan them. Readers are
// unaffected; writers wait for the checkpoint save.
//
// On a catalog with paging enabled (OpenPaged / EnablePaging) the base
// at wsdPath is a page file and the checkpoint is incremental: only
// pages of components touched since the previous checkpoint are
// rewritten, and a checkpoint at an already-persisted version writes
// nothing at all.
func (c *Catalog) Checkpoint(w *WAL, wsdPath string) error {
	c.writer.Lock()
	defer c.writer.Unlock()
	c.waitFlushed()
	snap := c.cur.Load()
	if len(c.pagers) > 0 && c.pagers[0] != nil && c.pagers[0].Path() == wsdPath {
		ps := c.pagers[0]
		if ps.Version() == snap.Version {
			// Nothing committed since the last checkpoint: the base on
			// disk is already this exact state and the WAL holds only
			// records the next recovery will skip. Zero writes.
			ps.NoteNoop()
			w.noteCheckpoint(snap.Version)
			return nil
		}
		if err := ps.WriteCheckpoint(ckptSlices(snap, 1, c.compID.Load())[0]); err != nil {
			return fmt.Errorf("store: writing page checkpoint: %w", err)
		}
		if err := w.reset(); err != nil {
			return err
		}
		w.noteCheckpoint(snap.Version)
		return nil
	}
	return w.Checkpoint(snap, wsdPath)
}

// Close closes the log file. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Applier re-executes one committed WAL record against the catalog
// during recovery. It must apply the record's statements as a single
// transaction committing exactly version rec.Version (isql.ReplayRecord
// is the canonical implementation — the store itself cannot parse
// I-SQL).
type Applier func(cat *Catalog, rec WALRecord) error

// Open recovers a WAL-backed catalog: load the last checkpoint from
// wsdPath (the empty catalog when none exists), replay the log tail —
// every intact record newer than the checkpoint, applied as a page
// delta when the record carries one, re-executed through applier
// otherwise — and return the catalog with the WAL attached as its
// commit logger, ready for new transactions. The catalog after Open is
// byte-identical (through Save) to the last committed state before the
// crash: committed transactions survive, uncommitted ones vanish.
//
// The checkpoint base at wsdPath may be either the historical v1 JSON
// document or a v2 page file; subsequent checkpoints through the
// returned catalog write the page format (the v1→v2 migration happens
// on the first checkpoint after an upgrade).
func Open(wsdPath, walPath string, applier Applier) (*Catalog, *WAL, error) {
	return OpenPaged(wsdPath, walPath, applier, DefaultPoolPages)
}

// OpenPaged is Open with an explicit buffer-pool capacity (in pages)
// for the page-file base. Catalogs larger than the pool still recover:
// the pool pages object chains in and out of memory on demand.
func OpenPaged(wsdPath, walPath string, applier Applier, poolPages int) (*Catalog, *WAL, error) {
	ps, loaded, err := OpenPageStore(wsdPath, 0, true, poolPages)
	if err != nil {
		return nil, nil, fmt.Errorf("store: loading checkpoint: %w", err)
	}
	var cat *Catalog
	if loaded != nil {
		snap, compID, err := mergeLoaded([]*loadedShard{loaded})
		if err != nil {
			ps.Close()
			return nil, nil, fmt.Errorf("store: loading page checkpoint: %w", err)
		}
		cat = newCatalogSeeded(snap, compID)
	} else {
		switch _, err := os.Stat(wsdPath); {
		case err == nil:
			cat, err = LoadFile(wsdPath)
			if err != nil {
				ps.Close()
				return nil, nil, fmt.Errorf("store: loading checkpoint: %w", err)
			}
		case os.IsNotExist(err):
			cat = New(nil)
		default:
			ps.Close()
			return nil, nil, err
		}
	}
	cat.pagers = []*PageStore{ps}
	wal, records, err := OpenWAL(walPath)
	if err != nil {
		ps.Close()
		return nil, nil, err
	}
	fail := func(err error) (*Catalog, *WAL, error) {
		wal.Close()
		ps.Close()
		return nil, nil, err
	}
	for _, rec := range records {
		snap := cat.Snapshot()
		if rec.Version <= snap.Version {
			continue // already in the checkpoint
		}
		if rec.Version != snap.Version+1 {
			return fail(fmt.Errorf("store: WAL gap: catalog at v%d, next record is v%d", snap.Version, rec.Version))
		}
		if rec.Delta != nil {
			// Delta replay is the fast path; a delta that no longer applies
			// (e.g. the epoch that created a relation it touches was itself
			// discarded by crash filtering) falls back to deterministic
			// statement re-execution below.
			if err := cat.replayDelta(rec.Version, rec.Delta); err == nil {
				continue
			}
		}
		if err := applier(cat, rec); err != nil {
			return fail(fmt.Errorf("store: replaying WAL record v%d: %w", rec.Version, err))
		}
		if got := cat.Snapshot().Version; got != rec.Version {
			return fail(fmt.Errorf("store: replaying WAL record v%d left the catalog at v%d (non-deterministic replay?)", rec.Version, got))
		}
	}
	cat.SetLogger(wal)
	return cat, wal, nil
}

// replayDelta installs the effect of one delta-carrying WAL record:
// the delta is applied to the current snapshot and the result published
// as version v — no statement re-execution, no query-engine
// involvement. Recovery-only; the catalog must have no live writers.
func (c *Catalog) replayDelta(v uint64, d *CommitDelta) error {
	cur := c.cur.Load()
	db, views, err := applyDelta(cur.DB, cur.Views, d)
	if err != nil {
		return err
	}
	next := &Snapshot{Version: v, DB: db, Views: views}
	c.assignIDs(next.DB)
	next.compID = c.compID.Load()
	c.hmu.Lock()
	c.head = next
	c.hmu.Unlock()
	c.cur.Store(next)
	return nil
}

// SegmentPath returns the path of shard si's WAL segment under walDir.
func SegmentPath(walDir string, si int) string {
	return filepath.Join(walDir, fmt.Sprintf("wal-%d.log", si))
}

// OpenSharded recovers a sharded WAL-backed catalog: load the last
// checkpoint from wsdPath, scan every shard segment wal-<i>.log under
// walDir (torn tails truncated per segment), merge the intact records
// by epoch, discard cross-shard epochs whose commit marker is absent
// (the two-phase publish never finished — the transaction rolls back on
// every shard), replay the surviving epochs in ascending order through
// applier, and return the catalog with one WAL segment per shard
// attached. Epoch order is a valid serialization of the pre-crash
// execution: single-shard commits read only their shard and epochs are
// assigned under the shard locks, so replaying the merged sequence
// serially reproduces the per-shard states byte-identically.
//
// nshards == 1 delegates to Open on wal-0.log (the strict
// density-checked single-log recovery).
//
// With a page-file base, the checkpoint is one file per shard (wsdPath
// plus wsdPath.s<i> side files); a torn multi-file checkpoint leaves
// the files at mixed epochs, so recovery merges them — each object from
// the newest file holding it — and replays every WAL epoch newer than
// the oldest file, which delta replay makes idempotent.
func OpenSharded(wsdPath, walDir string, nshards int, applier Applier) (*Catalog, []*WAL, error) {
	return OpenShardedPaged(wsdPath, walDir, nshards, applier, DefaultPoolPages)
}

// OpenShardedPaged is OpenSharded with an explicit per-shard
// buffer-pool capacity in pages.
func OpenShardedPaged(wsdPath, walDir string, nshards int, applier Applier, poolPages int) (*Catalog, []*WAL, error) {
	if nshards <= 1 {
		cat, wal, err := OpenPaged(wsdPath, SegmentPath(walDir, 0), applier, poolPages)
		if err != nil {
			return nil, nil, err
		}
		return cat, []*WAL{wal}, nil
	}
	cat, pagers, err := loadShardedBase(wsdPath, nshards, poolPages)
	if err != nil {
		return nil, nil, err
	}
	cat.shard(nshards)
	cat.pagers = pagers
	closePagers := func() {
		for _, ps := range pagers {
			if ps != nil {
				ps.Close()
			}
		}
	}
	wals := make([]*WAL, nshards)
	closeAll := func() {
		for _, w := range wals {
			if w != nil {
				w.Close()
			}
		}
		closePagers()
	}
	type epochRec struct {
		stmts  []string
		parts  []int
		delta  *CommitDelta
		staged map[int]bool // shards whose segment holds the stage record
		marked bool
	}
	epochs := map[uint64]*epochRec{}
	for si := 0; si < nshards; si++ {
		wal, records, err := OpenWAL(SegmentPath(walDir, si))
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		wals[si] = wal
		for _, rec := range records {
			er := epochs[rec.Version]
			if er == nil {
				er = &epochRec{staged: map[int]bool{}}
				epochs[rec.Version] = er
			}
			if rec.Marker {
				er.marked = true
				continue
			}
			er.stmts = rec.Stmts
			er.parts = rec.Parts
			if rec.Delta != nil {
				er.delta = rec.Delta
			}
			er.staged[si] = true
		}
	}
	base := cat.Snapshot().Version
	var order []uint64
	for e, er := range epochs {
		if e <= base {
			continue // already in the checkpoint (crash between save and truncate)
		}
		if len(er.parts) > 1 && !er.marked {
			continue // unmarked cross-shard prefix: rolls back everywhere
		}
		if len(er.stmts) == 0 {
			continue // marker without any surviving stage record
		}
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	// Delta replay is only sound while the surviving epoch chain is
	// dense: a delta captures whole objects as of its commit, so applying
	// one after an earlier epoch was discarded (torn segment, rolled-back
	// cross-shard commit) would resurrect that epoch's effects. The first
	// gap switches the rest of the replay to statement re-execution —
	// the reference semantics for arbitrary surviving subsets.
	dense := true
	expected := base + 1
	for _, e := range order {
		er := epochs[e]
		if e != expected {
			dense = false
		}
		expected = e + 1
		if dense && er.delta != nil {
			cur := cat.Snapshot()
			if db, views, aerr := applyDelta(cur.DB, cur.Views, er.delta); aerr == nil {
				cat.resetSharded(&Snapshot{Version: e, DB: db, Views: views})
				continue
			}
			dense = false
		}
		if err := applier(cat, WALRecord{Version: e, Stmts: er.stmts}); err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("store: replaying WAL epoch e%d: %w", e, err)
		}
	}
	// Re-stamp the catalog at the last durable epoch so the recovered
	// Version (which Save persists) matches the pre-crash published
	// state rather than the compressed replay count.
	last := base
	if len(order) > 0 {
		last = order[len(order)-1]
	}
	cat.resetSharded(&Snapshot{Version: last, DB: cat.Snapshot().DB, Views: cat.Snapshot().Views})
	cat.SetShardLoggers(wals)
	return cat, wals, nil
}

// loadShardedBase loads the checkpoint base for an nshards-way catalog
// and returns it with one PageStore per shard (uninitialized stores for
// files that do not exist yet — the first checkpoint creates them).
// With a page-file main base, side files are probed past nshards too: a
// catalog checkpointed at a higher shard count keeps its objects in
// files the current count does not write, and the merge must still see
// them.
func loadShardedBase(wsdPath string, nshards, poolPages int) (*Catalog, []*PageStore, error) {
	pagers := make([]*PageStore, nshards)
	var extras []*PageStore
	fail := func(err error) (*Catalog, []*PageStore, error) {
		for _, ps := range pagers {
			if ps != nil {
				ps.Close()
			}
		}
		for _, ps := range extras {
			ps.Close()
		}
		return nil, nil, err
	}
	main, loaded, err := OpenPageStore(wsdPath, 0, true, poolPages)
	if err != nil {
		return fail(fmt.Errorf("store: loading checkpoint: %w", err))
	}
	pagers[0] = main
	if loaded == nil {
		// Legacy v1 JSON (or no file at all): load it whole; the pagers
		// stay uninitialized until the first checkpoint migrates the base
		// to the page format.
		var cat *Catalog
		switch _, serr := os.Stat(wsdPath); {
		case serr == nil:
			cat, err = LoadFile(wsdPath)
			if err != nil {
				return fail(fmt.Errorf("store: loading checkpoint: %w", err))
			}
		case os.IsNotExist(serr):
			cat = New(nil)
		default:
			return fail(serr)
		}
		for i := 1; i < nshards; i++ {
			ps, _, perr := OpenPageStore(shardCkptPath(wsdPath, i), i, false, poolPages)
			if perr != nil {
				return fail(fmt.Errorf("store: opening shard %d page store: %w", i, perr))
			}
			pagers[i] = ps
		}
		return cat, pagers, nil
	}
	files := []*loadedShard{loaded}
	for i := 1; ; i++ {
		p := shardCkptPath(wsdPath, i)
		if _, serr := os.Stat(p); os.IsNotExist(serr) {
			if i < nshards {
				ps, _, perr := OpenPageStore(p, i, false, poolPages)
				if perr != nil {
					return fail(fmt.Errorf("store: opening shard %d page store: %w", i, perr))
				}
				pagers[i] = ps
				continue
			}
			break
		}
		ps, sl, perr := OpenPageStore(p, i, false, poolPages)
		if perr != nil {
			return fail(fmt.Errorf("store: loading shard %d checkpoint: %w", i, perr))
		}
		if sl == nil {
			ps.Close()
			return fail(fmt.Errorf("store: shard checkpoint %s exists but is not a page file", p))
		}
		files = append(files, sl)
		if i < nshards {
			pagers[i] = ps
		} else {
			// Stale file from a higher shard count: its objects join the
			// merge, but the store closes now — the next checkpoint
			// deletes the file.
			extras = append(extras, ps)
		}
	}
	snap, compID, err := mergeLoaded(files)
	if err != nil {
		return fail(fmt.Errorf("store: merging shard checkpoints: %w", err))
	}
	for _, ps := range extras {
		ps.Close()
	}
	return newCatalogSeeded(snap, compID), pagers, nil
}
