package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// addRelApplier interprets WAL statement records of the form "T<name>"
// by adding an empty relation of that name — a store-level stand-in for
// the I-SQL applier, so the log machinery is testable without parsing.
func addRelApplier(cat *Catalog, rec WALRecord) error {
	return cat.Update(func(tx *Tx) error {
		db := tx.DB()
		for _, stmt := range rec.Stmts {
			tx.Log(stmt)
			db = db.WithRelation(stmt, relation.NewSchema("X"), nil)
		}
		tx.SetDB(db)
		return nil
	})
}

// addRel commits one logged relation-adding transaction.
func addRel(t *testing.T, cat *Catalog, name string) {
	t.Helper()
	err := cat.Update(func(tx *Tx) error {
		tx.Log(name)
		tx.SetDB(tx.DB().WithRelation(name, relation.NewSchema("X"), nil))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func saveBytes(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStagedCommitPublishesOnce: a multi-statement staged transaction
// stays invisible until Commit, then appears as exactly one version.
func TestStagedCommitPublishesOnce(t *testing.T) {
	c := New(nil)
	base := c.Snapshot()
	txn := c.Begin()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("T%d", i)
		err := txn.Update(func(tx *Tx) error {
			tx.SetDB(tx.DB().WithRelation(name, relation.NewSchema("X"), nil))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != base {
			t.Fatalf("staged statement %d is visible before commit", i)
		}
		if txn.Snapshot().DB.IndexOf(name) < 0 {
			t.Fatalf("staging snapshot misses its own statement %d", i)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	final := c.Snapshot()
	if final.Version != base.Version+1 {
		t.Fatalf("commit published version %d, want %d (one version for the whole batch)", final.Version, base.Version+1)
	}
	if len(final.DB.Names) != 3 {
		t.Fatalf("committed catalog has %d relations, want 3", len(final.DB.Names))
	}
}

// TestStagedRollbackInvisible: rollback leaves the catalog untouched.
func TestStagedRollbackInvisible(t *testing.T) {
	c := New(nil)
	before := saveBytes(t, c.Snapshot())
	txn := c.Begin()
	if err := txn.Update(func(tx *Tx) error {
		tx.SetDB(tx.DB().WithRelation("Junk", relation.NewSchema("X"), nil))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	txn.Rollback()
	if got := saveBytes(t, c.Snapshot()); !bytes.Equal(got, before) {
		t.Fatal("rollback changed the catalog")
	}
	if err := txn.Commit(); !errors.Is(err, errTxnDone) {
		t.Fatalf("commit after rollback: %v, want errTxnDone", err)
	}
}

// TestStagedConflict: first committer wins; the loser reports
// *ConflictError and publishes nothing.
func TestStagedConflict(t *testing.T) {
	c := New(nil)
	txn := c.Begin()
	if err := txn.Update(func(tx *Tx) error {
		tx.SetDB(tx.DB().WithRelation("A", relation.NewSchema("X"), nil))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	addRel(t, c, "B") // interleaved auto-commit writer
	err := txn.Commit()
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConflictError, got %v", err)
	}
	final := c.Snapshot()
	if final.DB.IndexOf("A") >= 0 {
		t.Fatal("conflicting transaction leaked state")
	}
	if final.DB.IndexOf("B") < 0 {
		t.Fatal("winning writer lost state")
	}
}

// TestStagedReadOnlyCommit: a transaction that staged nothing commits
// without bumping the version even when the catalog moved meanwhile.
func TestStagedReadOnlyCommit(t *testing.T) {
	c := New(nil)
	txn := c.Begin()
	_ = txn.Snapshot()
	addRel(t, c, "B")
	if err := txn.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
}

// TestWALRoundTrip: commits append records; reopening replays them into
// an identical catalog, byte for byte through Save.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")

	cat, wal, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		addRel(t, cat, fmt.Sprintf("T%d", i))
	}
	want := saveBytes(t, cat.Snapshot())
	wal.Close() // crash: no checkpoint was ever written

	cat2, wal2, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatalf("recovered catalog differs\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if cat2.Snapshot().Version != 6 {
		t.Fatalf("recovered version %d, want 6", cat2.Snapshot().Version)
	}
}

// TestWALTornTailTruncated: a half-written final record (crash
// mid-append) is detected and dropped; recovery stops at the last
// intact record and appending resumes cleanly.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")

	cat, wal, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	addRel(t, cat, "T0")
	addRel(t, cat, "T1")
	want := saveBytes(t, cat.Snapshot())
	wal.Close()

	// Simulate a torn append: half a record, no newline.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":3,"stmts":["T2"],"cr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cat2, wal2, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("torn tail changed the recovered catalog")
	}
	// The file was truncated back to the intact prefix; a new commit
	// appends a valid record after it.
	addRel(t, cat2, "T2")
	want2 := saveBytes(t, cat2.Snapshot())
	wal2.Close()
	cat3, wal3, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal3.Close()
	if got := saveBytes(t, cat3.Snapshot()); !bytes.Equal(got, want2) {
		t.Fatal("recovery after torn-tail truncation + append differs")
	}
}

// TestWALCorruptRecordStopsReplay: a flipped byte fails the CRC; replay
// stops at the last good record rather than applying garbage.
func TestWALCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")

	cat, wal, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	addRel(t, cat, "T0")
	good := saveBytes(t, cat.Snapshot())
	addRel(t, cat, "T1")
	wal.Close()

	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second record's statement text.
	mangled := strings.Replace(string(data), `"T1"`, `"TX"`, 1)
	if mangled == string(data) {
		t.Fatal("test setup: record not found")
	}
	if err := os.WriteFile(walPath, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	cat2, wal2, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, good) {
		t.Fatal("replay did not stop at the corrupt record")
	}
}

// TestWALCheckpointTruncates: checkpointing writes the snapshot,
// truncates the log, and recovery uses checkpoint + tail.
func TestWALCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")

	cat, wal, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	addRel(t, cat, "T0")
	addRel(t, cat, "T1")
	if wal.Appended() != 2 {
		t.Fatalf("appended = %d, want 2", wal.Appended())
	}
	if err := cat.Checkpoint(wal, wsdPath); err != nil {
		t.Fatal(err)
	}
	if wal.Appended() != 0 {
		t.Fatalf("appended after checkpoint = %d, want 0", wal.Appended())
	}
	if info, err := os.Stat(walPath); err != nil || info.Size() != 0 {
		t.Fatalf("WAL not truncated after checkpoint: %v, %d bytes", err, info.Size())
	}
	addRel(t, cat, "T2") // tail after the checkpoint
	want := saveBytes(t, cat.Snapshot())
	wal.Close()

	cat2, wal2, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("checkpoint + tail recovery differs from pre-crash state")
	}
}

// TestWALStaleRecordsSkipped: records at or below the checkpoint
// version (a crash between checkpoint save and log truncate) are
// skipped on replay instead of being applied twice.
func TestWALStaleRecordsSkipped(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")

	cat, wal, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	addRel(t, cat, "T0")
	// Checkpoint WITHOUT truncating the log: exactly the crash window.
	if err := SaveFile(wsdPath, cat.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, cat.Snapshot())
	wal.Close()

	cat2, wal2, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("stale record was replayed on top of the checkpoint that already contains it")
	}
}

// TestWALConcurrentWriters: logged commits from many goroutines recover
// to the same catalog (run under -race in CI).
func TestWALConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	wsdPath := filepath.Join(dir, "checkpoint.wsd")
	walPath := filepath.Join(dir, "wal.log")
	cat, wal, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = cat.Update(func(tx *Tx) error {
				name := fmt.Sprintf("W%d", g)
				tx.Log(name)
				tx.SetDB(tx.DB().WithRelation(name, relation.NewSchema("X"), nil))
				return nil
			})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	want := saveBytes(t, cat.Snapshot())
	wal.Close()
	cat2, wal2, err := Open(wsdPath, walPath, addRelApplier)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := saveBytes(t, cat2.Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("concurrent-writer recovery differs")
	}
}

// TestSaveFileAtomic: SaveFile goes through a temp file + rename — the
// destination always holds either the old or the new complete document,
// and no temp files are left behind.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.wsd")
	c1 := New(nil)
	if err := SaveFile(path, c1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	c2 := FromComplete([]string{"T"}, []*relation.Relation{
		relation.FromRows(relation.NewSchema("A"), relation.Tuple{value.Int(1)})})
	if err := SaveFile(path, c2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Snapshot().DB.IndexOf("T") < 0 {
		t.Fatal("overwrite lost the new catalog")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}
