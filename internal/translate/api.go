package translate

import (
	"fmt"

	"worldsetdb/internal/inline"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// AnswerTableName is the name given to the answer table when an
// evaluated representation is decoded back into a world-set.
const AnswerTableName = "$ans"

// ToRelational implements Theorem 5.7: for a 1↦1 (complete-to-complete)
// WSA query q over the named base tables, it returns an equivalent
// relational algebra query that operates directly on the complete
// database. The final operator projects away all world-id attributes
// created by nested operators.
func ToRelational(q wsa.Expr, names []string, cat ra.Catalog) (ra.Expr, error) {
	if !wsa.IsCompleteToComplete(q) {
		return nil, fmt.Errorf("translate: query has type 1 ↦ %s, not 1 ↦ 1", q.Out(wsa.One))
	}
	if err := checkNames(names, cat); err != nil {
		return nil, err
	}
	tr := NewTranslator(cat)
	sym, err := tr.Translate(q, InitComplete(names))
	if err != nil {
		return nil, err
	}
	s, err := tr.schemaOf(sym.Result)
	if err != nil {
		return nil, err
	}
	if ids := s.IDAttrs(); len(ids) == 0 {
		return sym.Result, nil
	}
	return ra.ProjectNames(sym.Result, s.ValueAttrs()...), nil
}

// EvalComplete translates q (which must be 1↦1) and evaluates the
// resulting relational algebra query on the complete database db. The
// base-table names are taken from db's catalog via the query itself.
func EvalComplete(q wsa.Expr, names []string, db ra.DB) (*relation.Relation, error) {
	e, err := ToRelational(q, names, db)
	if err != nil {
		return nil, err
	}
	return e.Eval(db)
}

// EvalWorldSet evaluates an arbitrary (any type) WSA query on a
// world-set by (1) encoding the world-set as an inlined representation,
// (2) running the Figure 6 translation over it, (3) evaluating every
// table expression, and (4) decoding the resulting representation. The
// output is a world-set over ⟨R1, …, Rk, $ans⟩ directly comparable with
// the reference evaluator's wsa.Eval.
func EvalWorldSet(q wsa.Expr, ws *worldset.WorldSet) (*worldset.WorldSet, error) {
	repr := inline.Encode(ws)
	db := ra.DB{inline.WorldTableName: repr.World}
	for i, n := range repr.Names {
		db[n] = repr.Tables[i]
	}
	if err := checkNames(repr.Names, db); err != nil {
		return nil, err
	}
	tr := NewTranslator(db)
	sym, err := tr.Translate(q, InitInlined(repr.Names))
	if err != nil {
		return nil, err
	}
	out := &inline.Repr{Names: append(append([]string{}, sym.Names...), AnswerTableName)}
	for _, te := range sym.Tables {
		rel, err := te.Eval(db)
		if err != nil {
			return nil, err
		}
		out.Tables = append(out.Tables, rel)
	}
	res, err := sym.Result.Eval(db)
	if err != nil {
		return nil, err
	}
	out.Tables = append(out.Tables, res)
	if out.World, err = sym.World.Eval(db); err != nil {
		return nil, err
	}
	return out.Decode()
}

func checkNames(names []string, cat ra.Catalog) error {
	for _, n := range names {
		if n == inline.WorldTableName || n == AnswerTableName {
			return fmt.Errorf("translate: relation name %q is reserved", n)
		}
		s, ok := cat.SchemaOf(n)
		if !ok {
			return fmt.Errorf("translate: unknown relation %q", n)
		}
		for _, attr := range s {
			if relation.IsIDAttr(attr) && attr != inline.WorldAttr {
				return fmt.Errorf("translate: base attribute %q uses the reserved id prefix", attr)
			}
		}
	}
	return nil
}
