package translate

import (
	"testing"

	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"
)

// TestReservedNamesRejected: base relations may not collide with the
// representation's reserved names or use the world-id prefix.
func TestReservedNamesRejected(t *testing.T) {
	q := wsa.NewCert(&wsa.Rel{Name: "$W"})
	cat := ra.SchemaCatalog{"$W": relation.NewSchema("A")}
	if _, err := ToRelational(q, []string{"$W"}, cat); err == nil {
		t.Error("expected reserved-name error for $W")
	}

	cat2 := ra.SchemaCatalog{"R": relation.NewSchema("A", "#mine")}
	q2 := wsa.NewCert(&wsa.Rel{Name: "R"})
	if _, err := ToRelational(q2, []string{"R"}, cat2); err == nil {
		t.Error("expected reserved-prefix error for attribute #mine")
	}

	if _, err := ToRelational(q2, []string{"R"}, ra.SchemaCatalog{}); err == nil {
		t.Error("expected unknown-relation error")
	}
}

// TestTranslationSizePolynomial spot-checks the "polynomial size" claim
// of Theorem 5.7. The Figure 6 translation is presented with
// let-bindings, i.e. as a DAG with shared subplans; our translator
// preserves that sharing through common node pointers. The DAG size must
// grow by a bounded amount per nesting level, even though the tree
// rendering duplicates shared subtrees and grows geometrically.
func TestTranslationSizePolynomial(t *testing.T) {
	cat := ra.SchemaCatalog{"R": relation.NewSchema("A", "B")}
	build := func(levels int) wsa.Expr {
		var q wsa.Expr = &wsa.Rel{Name: "R"}
		for i := 0; i < levels; i++ {
			q = wsa.NewCert(&wsa.Choice{Attrs: []string{"A"}, From: q})
		}
		return q
	}
	var sizes []int
	for levels := 1; levels <= 6; levels++ {
		e, err := ToRelational(build(levels), []string{"R"}, cat)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, ra.DAGSize(e))
	}
	// Constant growth per level: the increments must not increase.
	for i := 2; i < len(sizes); i++ {
		prev := sizes[i-1] - sizes[i-2]
		cur := sizes[i] - sizes[i-1]
		if cur > prev+2 {
			t.Fatalf("DAG size grows superlinearly: %v", sizes)
		}
	}
}
