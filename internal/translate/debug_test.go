package translate

import (
	"math/rand"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// TestDebugOptimizedUnion reproduces a failing seed for development
// diagnostics; it stays in the suite as a regression test.
func TestDebugOptimizedUnion(t *testing.T) {
	q := wsa.NewCert(wsa.NewUnion(
		&wsa.Project{Columns: []string{"A"}, From: &wsa.Choice{Attrs: []string{"A"}, From: &wsa.Rel{Name: "R"}}},
		&wsa.Choice{Attrs: []string{"C"}, From: &wsa.Rel{Name: "S"}}))
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	rng := rand.New(rand.NewSource(-1628201133064968394))
	db := ra.DB{
		"R": datagen.RandomRelation(rng, schemas[0], 3, 5),
		"S": datagen.RandomRelation(rng, schemas[1], 3, 5),
	}
	ws := worldset.FromDB(names, []*relation.Relation{db["R"], db["S"]})
	wantWS, err := wsa.Eval(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	want := wantWS.Worlds()[0][len(wantWS.Worlds()[0])-1]
	got, err := EvalCompleteOptimized(q, names, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualContents(want) {
		e, _ := ToRelationalOptimized(q, names, db)
		t.Fatalf("R=\n%s\nS=\n%s\nwant=\n%s\ngot=\n%s\nplan=%s", db["R"], db["S"], want, got, e)
	}
}
