package translate

import "worldsetdb/internal/wsa"

func init() {
	// The Figure 6 translation is one of the four evaluation engines;
	// see the engine registry in package wsa.
	wsa.RegisterEngine("translated", EvalWorldSet)
}
