package translate

import (
	"math/rand"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/randquery"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// fuzzSchema is the schema random queries are generated over.
var fuzzNames = []string{"R", "S"}
var fuzzSchemas = []relation.Schema{
	relation.NewSchema("A", "B"),
	relation.NewSchema("C"),
}

// TestFuzzGeneralTranslation generates hundreds of random WSA queries
// and random multi-world inputs and checks the Figure 6 translation
// against the Figure 3 reference semantics — the strongest evidence for
// the §5 construction beyond the hand-picked zoo.
func TestFuzzGeneralTranslation(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20070611))
	gen := randquery.NewQueryGen(rng, fuzzNames, fuzzSchemas)
	queries, inputs := 200, 3
	for qi := 0; qi < queries; qi++ {
		q := gen.Query(1 + rng.Intn(3))
		for wi := 0; wi < inputs; wi++ {
			ws := datagen.RandomWorldSet(rng, fuzzNames, fuzzSchemas, 3, 3, 3)
			want, err := wsa.Eval(q, ws)
			if err != nil {
				t.Fatalf("query %d (%s): reference eval failed: %v", qi, q, err)
			}
			got, err := EvalWorldSet(q, ws)
			if err != nil {
				t.Fatalf("query %d (%s): translated eval failed: %v", qi, q, err)
			}
			if !got.EqualWorlds(want) {
				t.Fatalf("query %d disagrees with the Figure 3 semantics\nquery: %s\ninput:\n%s\nreference:\n%s\ntranslated:\n%s",
					qi, q, ws, want, got)
			}
		}
	}
}

// TestFuzzConservativity generates random 1↦1 queries (by closing random
// queries with cert/poss) and checks both translations on random
// complete databases.
func TestFuzzConservativity(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(57))
	gen := randquery.NewQueryGen(rng, fuzzNames, fuzzSchemas)
	for qi := 0; qi < 150; qi++ {
		q := wsa.Expr(wsa.NewCert(gen.Query(1 + rng.Intn(3))))
		if rng.Intn(2) == 0 {
			q = wsa.NewPoss(gen.Query(1 + rng.Intn(3)))
		}
		if !wsa.IsCompleteToComplete(q) {
			t.Fatalf("closed query must be 1↦1: %s", q)
		}
		db := ra.DB{
			"R": datagen.RandomRelation(rng, fuzzSchemas[0], 3, 5),
			"S": datagen.RandomRelation(rng, fuzzSchemas[1], 3, 5),
		}
		ws := worldset.FromDB(fuzzNames, []*relation.Relation{db["R"], db["S"]})
		wantWS, err := wsa.Eval(q, ws)
		if err != nil {
			t.Fatalf("query %d (%s): %v", qi, q, err)
		}
		worlds := wantWS.Worlds()
		if len(worlds) != 1 {
			t.Fatalf("query %d (%s): 1↦1 query produced %d worlds", qi, q, len(worlds))
		}
		want := worlds[0][len(worlds[0])-1]

		general, err := EvalComplete(q, fuzzNames, db)
		if err != nil {
			t.Fatalf("query %d (%s): general translation: %v", qi, q, err)
		}
		if !general.EqualContents(want) {
			t.Fatalf("query %d: general translation wrong\nquery: %s\nwant %v\ngot %v",
				qi, q, want, general)
		}
		optimized, err := EvalCompleteOptimized(q, fuzzNames, db)
		if err != nil {
			t.Fatalf("query %d (%s): optimized translation: %v", qi, q, err)
		}
		if !optimized.EqualContents(want) {
			t.Fatalf("query %d: optimized translation wrong\nquery: %s\nwant %v\ngot %v",
				qi, q, want, optimized)
		}
	}
}
