// Package translate implements §5 of the paper: the translation of
// World-set Algebra queries into relational algebra queries over inlined
// representations (Figure 6), the conservativity result for 1↦1 queries
// (Theorem 5.7), and the optimized translation for complete-to-complete
// queries (§5.3).
//
// The translator is symbolic: it produces ra.Expr trees for every table
// of the output representation, so the equivalent relational algebra
// query can be printed, simplified and evaluated on any ra.DB.
//
// One deliberate deviation from the paper is documented in DESIGN.md:
// the world-pairing relation S of Figure 6 is symmetrized before
// complementation (the printed version mis-groups worlds whose grouping
// projection is a strict subset of another's); property tests against
// the Figure 3 semantics validate the fix.
package translate

import (
	"fmt"
	"strings"

	"worldsetdb/internal/inline"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"
)

// Sym is a symbolic inlined representation: one relational algebra
// expression per table of Definition 5.1, plus the expression for the
// answer table R_{k+1}.
type Sym struct {
	// Names are the represented relation names R1, …, Rk.
	Names []string
	// Tables are the expressions computing R1^T, …, Rk^T.
	Tables []ra.Expr
	// Result computes the answer table (nil before any translation).
	Result ra.Expr
	// World computes the world table W.
	World ra.Expr
}

func (s *Sym) clone() *Sym {
	return &Sym{
		Names:  s.Names,
		Tables: append([]ra.Expr{}, s.Tables...),
		Result: s.Result,
		World:  s.World,
	}
}

// Translator translates WSA queries to RA expressions over a catalog
// that resolves the base tables.
type Translator struct {
	cat   ra.Catalog
	fresh int
}

// NewTranslator returns a translator resolving base-table schemas
// against cat.
func NewTranslator(cat ra.Catalog) *Translator { return &Translator{cat: cat} }

// freshID generates a new world-id attribute name derived from base.
func (tr *Translator) freshID(base string) string {
	tr.fresh++
	base = strings.TrimPrefix(base, relation.IDPrefix)
	base = strings.Map(func(r rune) rune {
		if r == '.' || r == ' ' {
			return '_'
		}
		return r
	}, base)
	return fmt.Sprintf("%sv%d_%s", relation.IDPrefix, tr.fresh, base)
}

// freshVal generates a new value attribute name (used for the primed
// copies A′, B′ of the group-worlds-by construction).
func (tr *Translator) freshVal(base string) string {
	tr.fresh++
	return fmt.Sprintf("%s$%d", base, tr.fresh)
}

func (tr *Translator) schemaOf(e ra.Expr) (relation.Schema, error) { return e.Schema(tr.cat) }

// InitComplete builds the starting representation for a complete
// database (Example 5.6, step 1): the base tables carry no id attributes
// and the world table is the nullary relation {⟨⟩}.
func InitComplete(names []string) *Sym {
	tables := make([]ra.Expr, len(names))
	for i, n := range names {
		tables[i] = &ra.Base{Name: n}
	}
	return &Sym{Names: append([]string{}, names...), Tables: tables, World: ra.Nullary()}
}

// InitInlined builds the starting representation for an already-inlined
// world-set: base tables carry the Encode id attribute and the world
// table is the base table named inline.WorldTableName.
func InitInlined(names []string) *Sym {
	tables := make([]ra.Expr, len(names))
	for i, n := range names {
		tables[i] = &ra.Base{Name: n}
	}
	return &Sym{
		Names:  append([]string{}, names...),
		Tables: tables,
		World:  &ra.Base{Name: inline.WorldTableName},
	}
}

// Translate implements the translation function ⟦·⟧τ of Figure 6,
// mapping a WSA query and a symbolic representation to the symbolic
// representation extended with the answer table.
func (tr *Translator) Translate(q wsa.Expr, t *Sym) (*Sym, error) {
	switch n := q.(type) {
	case *wsa.Rel:
		for i, name := range t.Names {
			if name == n.Name {
				out := t.clone()
				out.Result = t.Tables[i]
				return out, nil
			}
		}
		return nil, fmt.Errorf("translate: unknown relation %q", n.Name)

	case *wsa.Select:
		sub, err := tr.Translate(n.From, t)
		if err != nil {
			return nil, err
		}
		sub.Result = &ra.Select{Pred: n.Pred, From: sub.Result}
		return sub, nil

	case *wsa.Project:
		sub, err := tr.Translate(n.From, t)
		if err != nil {
			return nil, err
		}
		s, err := tr.schemaOf(sub.Result)
		if err != nil {
			return nil, err
		}
		// π_{A}(q) keeps the id attributes V of the answer table.
		cols := append(append([]string{}, n.Columns...), s.IDAttrs()...)
		sub.Result = ra.ProjectNames(sub.Result, cols...)
		return sub, nil

	case *wsa.Rename:
		sub, err := tr.Translate(n.From, t)
		if err != nil {
			return nil, err
		}
		sub.Result = &ra.Rename{Pairs: n.Pairs, From: sub.Result}
		return sub, nil

	case *wsa.Choice:
		return tr.translateChoice(n, t)

	case *wsa.Close:
		return tr.translateClose(n, t)

	case *wsa.Group:
		return tr.translateGroup(n, t)

	case *wsa.BinOp:
		return tr.translateBinary(n.Kind, n.L, n.R, t)

	case *wsa.Join:
		// q1 ⋈_φ q2 abbreviates σ_φ(q1 × q2).
		sub, err := tr.translateBinary(wsa.OpProduct, n.L, n.R, t)
		if err != nil {
			return nil, err
		}
		sub.Result = &ra.Select{Pred: n.Pred, From: sub.Result}
		return sub, nil

	case *wsa.RepairKey:
		return nil, fmt.Errorf("translate: repair-by-key has no relational algebra equivalent (Proposition 4.2: NP-hard)")
	}
	return nil, fmt.Errorf("translate: unknown operator %T", q)
}

// translateChoice implements ⟦χ_B(q)⟧τ: the answer table is extended
// with copies of the B attributes as new id attributes V_B, the world
// table is updated with the padded left outer join of Remark 5.5 (so
// worlds whose answer is empty survive under the pad id c), and every
// other table is copied into the new worlds.
func (tr *Translator) translateChoice(n *wsa.Choice, t *Sym) (*Sym, error) {
	sub, err := tr.Translate(n.From, t)
	if err != nil {
		return nil, err
	}
	r := sub.Result
	s, err := tr.schemaOf(r)
	if err != nil {
		return nil, err
	}
	d, v := s.ValueAttrs(), s.IDAttrs()
	vb := make([]string, len(n.Attrs))
	for i, b := range n.Attrs {
		if !contains(d, b) {
			return nil, fmt.Errorf("translate: choice attribute %q not a value attribute of %v", b, s)
		}
		vb[i] = tr.freshID(b)
	}
	// X = δ_{B→V_B}(π_{V,B}(R)); W′ = W =⊲⊳ X.
	pairs := make([]ra.RenamePair, len(n.Attrs))
	for i := range n.Attrs {
		pairs[i] = ra.RenamePair{From: n.Attrs[i], To: vb[i]}
	}
	x := &ra.Rename{Pairs: pairs,
		From: ra.ProjectNames(r, append(append([]string{}, v...), n.Attrs...)...)}
	wp := &ra.LeftOuterPad{L: sub.World, R: x}

	out := sub.clone()
	out.World = wp
	for i := range out.Tables {
		out.Tables[i] = &ra.NaturalJoin{L: out.Tables[i], R: wp}
	}
	// R′ = π_{D, V, B as V_B}(R).
	cols := ra.Cols(append(append([]string{}, d...), v...)...)
	for i := range n.Attrs {
		cols = ra.ColsAs(cols, n.Attrs[i], vb[i])
	}
	out.Result = &ra.Project{Columns: cols, From: r}
	return out, nil
}

// translateClose implements ⟦poss(q)⟧τ and ⟦cert(q)⟧τ: poss drops the id
// attributes and copies the union into every world; cert divides by the
// world table.
func (tr *Translator) translateClose(n *wsa.Close, t *Sym) (*Sym, error) {
	sub, err := tr.Translate(n.From, t)
	if err != nil {
		return nil, err
	}
	s, err := tr.schemaOf(sub.Result)
	if err != nil {
		return nil, err
	}
	d := s.ValueAttrs()
	if n.Kind == wsa.ClosePoss {
		sub.Result = &ra.Product{L: ra.ProjectNames(sub.Result, d...), R: sub.World}
		return sub, nil
	}
	sub.Result = &ra.Product{L: &ra.Divide{L: sub.Result, R: sub.World}, R: sub.World}
	return sub, nil
}

// translateGroup implements ⟦pγ^B_A(q)⟧τ and ⟦cγ^B_A(q)⟧τ via the
// world-pairing construction of Figure 6 (with the symmetrization fix).
func (tr *Translator) translateGroup(n *wsa.Group, t *Sym) (*Sym, error) {
	sub, err := tr.Translate(n.From, t)
	if err != nil {
		return nil, err
	}
	return tr.groupOnResult(n, sub)
}

// groupOnResult runs the Figure 6 group-worlds-by construction on a
// representation whose Result is already computed. It only reads the
// answer table, which is what makes it reusable by the optimized
// translation.
func (tr *Translator) groupOnResult(n *wsa.Group, sub *Sym) (*Sym, error) {
	r := sub.Result
	s, err := tr.schemaOf(r)
	if err != nil {
		return nil, err
	}
	d, v := s.ValueAttrs(), s.IDAttrs()
	a := n.GroupBy
	b := n.ProjOrAll(d)

	// Fresh group-id attributes V2, one per id attribute.
	v2 := make([]string, len(v))
	renVtoV2 := make([]ra.RenamePair, len(v))
	swap := make([]ra.RenamePair, 0, 2*len(v))
	for i, vi := range v {
		v2[i] = tr.freshID(vi)
		renVtoV2[i] = ra.RenamePair{From: vi, To: v2[i]}
		swap = append(swap,
			ra.RenamePair{From: vi, To: v2[i]},
			ra.RenamePair{From: v2[i], To: vi})
	}

	piAV := ra.ProjectNames(r, append(append([]string{}, a...), v...)...)
	piV := ra.ProjectNames(r, v...)
	piV2 := &ra.Rename{Pairs: renVtoV2, From: piV}

	// All candidate (A, V, V2) combinations with A drawn from world V.
	allP := &ra.Product{L: piAV, R: piV2}

	// Matched: (a, w1, w2) with a ∈ w1 and a ∈ w2.
	aPrime := make([]string, len(a))
	renA := make([]ra.RenamePair, 0, len(a)+len(v))
	var eqA ra.Pred = ra.True{}
	for i, ai := range a {
		aPrime[i] = tr.freshVal(ai)
		renA = append(renA, ra.RenamePair{From: ai, To: aPrime[i]})
		eqA = ra.Conj(eqA, ra.Eq(ai, aPrime[i]))
	}
	renA = append(renA, renVtoV2...)
	matched := ra.ProjectNames(
		&ra.Join{L: piAV, R: &ra.Rename{Pairs: renA, From: piAV}, Pred: eqA},
		append(append(append([]string{}, a...), v...), v2...)...)

	// S: ordered pairs of worlds whose A-projections differ (in either
	// direction, after symmetrization).
	sDiff := ra.ProjectNames(&ra.Diff{L: allP, R: matched}, append(append([]string{}, v...), v2...)...)
	sSym := &ra.Union{
		L: sDiff,
		R: ra.ProjectNames(&ra.Rename{Pairs: swap, From: sDiff},
			append(append([]string{}, v...), v2...)...),
	}

	// S′: the equivalence relation "same group" over non-empty worlds.
	u0 := &ra.Product{L: piV, R: piV2}
	sPrime := &ra.Diff{L: u0, R: sSym}

	// R′: every answer tuple paired with every group id of its world.
	bv := append(append([]string{}, b...), v...)
	rp := ra.ProjectNames(&ra.NaturalJoin{L: r, R: sPrime}, append(bv, v2...)...)

	out := sub.clone()
	if n.Kind == wsa.GroupPoss {
		// Union within each group: keep (B, group id), rename V2→V.
		backPairs := make([]ra.RenamePair, len(v))
		for i := range v {
			backPairs[i] = ra.RenamePair{From: v2[i], To: v[i]}
		}
		out.Result = &ra.Rename{Pairs: backPairs,
			From: ra.ProjectNames(rp, append(append([]string{}, b...), v2...)...)}
		return out, nil
	}

	// cγ: certain within each group. U1 pairs each (b, w1, g) with every
	// member w″ of group g; Present keeps those with b ∈ w″; tuples with
	// any missing member are subtracted.
	v3 := make([]string, len(v))
	renVtoV3 := make([]ra.RenamePair, len(v))
	for i, vi := range v {
		v3[i] = tr.freshID(vi)
		renVtoV3[i] = ra.RenamePair{From: vi, To: v3[i]}
	}
	gm := &ra.Rename{Pairs: renVtoV3, From: sPrime} // (V3 member, V2 group)
	u1 := ra.ProjectNames(&ra.NaturalJoin{L: rp, R: gm},
		append(append(append(append([]string{}, b...), v...), v2...), v3...)...)

	bPrime := make([]string, len(b))
	renB := make([]ra.RenamePair, 0, len(b)+len(v))
	var onPred ra.Pred = ra.True{}
	for i, bi := range b {
		bPrime[i] = tr.freshVal(bi)
		renB = append(renB, ra.RenamePair{From: bi, To: bPrime[i]})
		onPred = ra.Conj(onPred, ra.Eq(bi, bPrime[i]))
	}
	v4 := make([]string, len(v))
	for i, vi := range v {
		v4[i] = tr.freshID(vi)
		renB = append(renB, ra.RenamePair{From: vi, To: v4[i]})
		onPred = ra.Conj(onPred, ra.Eq(v3[i], v4[i]))
	}
	memberTuples := &ra.Rename{Pairs: renB, From: ra.ProjectNames(r, append(append([]string{}, b...), v...)...)}
	present := ra.ProjectNames(&ra.Join{L: u1, R: memberTuples, Pred: onPred},
		append(append(append(append([]string{}, b...), v...), v2...), v3...)...)
	missing := &ra.Diff{L: u1, R: present}

	certInGroup := &ra.Diff{
		L: ra.ProjectNames(rp, append(append([]string{}, b...), v2...)...),
		R: ra.ProjectNames(missing, append(append([]string{}, b...), v2...)...),
	}
	backPairs := make([]ra.RenamePair, len(v))
	for i := range v {
		backPairs[i] = ra.RenamePair{From: v2[i], To: v[i]}
	}
	out.Result = &ra.Rename{Pairs: backPairs, From: certInGroup}
	return out, nil
}

// translateBinary implements ⟦q1 Θ q2⟧τ and ⟦q1 × q2⟧τ: both operands
// are translated against the input representation, the world tables are
// joined on the shared (original) id attributes, and the answers are
// combined per combined world.
func (tr *Translator) translateBinary(kind wsa.BinOpKind, l, r wsa.Expr, t *Sym) (*Sym, error) {
	t1, err := tr.Translate(l, t)
	if err != nil {
		return nil, err
	}
	t2, err := tr.Translate(r, t)
	if err != nil {
		return nil, err
	}
	w0 := &ra.NaturalJoin{L: t1.World, R: t2.World}

	out := t.clone()
	out.World = w0
	for i := range out.Tables {
		out.Tables[i] = &ra.NaturalJoin{L: out.Tables[i], R: w0}
	}

	if kind == wsa.OpProduct {
		// Natural join on the shared original ids pairs answers from the
		// same source world and produces all combinations of new worlds.
		out.Result = &ra.NaturalJoin{L: t1.Result, R: t2.Result}
		return out, nil
	}

	s1, err := tr.schemaOf(t1.Result)
	if err != nil {
		return nil, err
	}
	s2, err := tr.schemaOf(t2.Result)
	if err != nil {
		return nil, err
	}
	w0s, err := tr.schemaOf(w0)
	if err != nil {
		return nil, err
	}
	d1, d2 := s1.ValueAttrs(), s2.ValueAttrs()
	if len(d1) != len(d2) {
		return nil, fmt.Errorf("translate: %v operands have arities %d and %d", kind, len(d1), len(d2))
	}
	// Copy both answers into the combined worlds and align the right
	// operand's columns to the left one's names and order.
	lhs := ra.ProjectNames(&ra.NaturalJoin{L: t1.Result, R: w0},
		append(append([]string{}, d1...), w0s...)...)
	rCols := make([]ra.ProjCol, 0, len(d1)+len(w0s))
	for i := range d1 {
		rCols = append(rCols, ra.ProjCol{As: d1[i], Src: d2[i]})
	}
	for _, id := range w0s {
		rCols = append(rCols, ra.ProjCol{As: id, Src: id})
	}
	rhs := &ra.Project{Columns: rCols, From: &ra.NaturalJoin{L: t2.Result, R: w0}}

	switch kind {
	case wsa.OpUnion:
		out.Result = &ra.Union{L: lhs, R: rhs}
	case wsa.OpIntersect:
		out.Result = &ra.Intersect{L: lhs, R: rhs}
	case wsa.OpDiff:
		out.Result = &ra.Diff{L: lhs, R: rhs}
	default:
		return nil, fmt.Errorf("translate: unknown binary kind %v", kind)
	}
	return out, nil
}

func contains(s relation.Schema, name string) bool {
	for _, n := range s {
		if n == name {
			return true
		}
	}
	return false
}
