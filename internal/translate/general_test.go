package translate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

func strTuple(vals ...string) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Str(v)
	}
	return t
}

// checkAgainstReference verifies that the Figure 6 translation evaluated
// over the encoded world-set agrees with the direct Figure 3 semantics.
func checkAgainstReference(t *testing.T, q wsa.Expr, ws *worldset.WorldSet) {
	t.Helper()
	want, err := wsa.Eval(q, ws)
	if err != nil {
		t.Fatalf("reference eval of %s: %v", q, err)
	}
	got, err := EvalWorldSet(q, ws)
	if err != nil {
		t.Fatalf("translated eval of %s: %v", q, err)
	}
	if !got.EqualWorlds(want) {
		t.Fatalf("translation disagrees with Figure 3 semantics for %s\nreference:\n%s\ntranslated:\n%s",
			q, want, got)
	}
}

func flightsWS() *worldset.WorldSet {
	return worldset.FromDB([]string{"HFlights"}, []*relation.Relation{datagen.PaperFlights()})
}

// TestExample56Translation reproduces Example 5.6: the trip-planning
// query cert(π_Arr(χ_Dep(HFlights))) translated to relational algebra
// evaluates to {ATL} on the Figure 2(a) database.
func TestExample56Translation(t *testing.T) {
	q := wsa.NewCert(&wsa.Project{Columns: []string{"Arr"},
		From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}})
	db := ra.DB{"HFlights": datagen.PaperFlights()}

	e, err := ToRelational(q, []string{"HFlights"}, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Eval(db)
	if err != nil {
		t.Fatalf("evaluating %s: %v", e, err)
	}
	want := relation.FromRows(relation.NewSchema("Arr"), strTuple("ATL"))
	if !got.Equal(want) {
		t.Fatalf("translated query returned %v, want {ATL}\nquery: %s", got, e)
	}
}

// TestFigure5ChoiceStep reproduces Figure 5(c): evaluating χ_A(R) on the
// inlined representation creates world ids 1, 2, 3 (the A-values) and
// tags each tuple with its world.
func TestFigure5ChoiceStep(t *testing.T) {
	db := ra.DB{"R": datagen.Fig5R(), "S": datagen.Fig5S()}
	tr := NewTranslator(db)
	sym, err := tr.Translate(
		&wsa.Choice{Attrs: []string{"A"}, From: &wsa.Rel{Name: "R"}},
		InitComplete([]string{"R", "S"}))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sym.Result.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// R1 has schema (A, B, #id) with the id equal to A.
	if r1.Len() != 4 {
		t.Fatalf("R1 should keep all 4 tuples, got %d", r1.Len())
	}
	ids := r1.Schema().IDAttrs()
	if len(ids) != 1 {
		t.Fatalf("R1 should have one id attribute, got %v", r1.Schema())
	}
	aIdx := r1.Schema().Index("A")
	idIdx := r1.Schema().Index(ids[0])
	r1.Each(func(tup relation.Tuple) {
		if !tup[aIdx].Equal(tup[idIdx]) {
			t.Fatalf("world id must equal the A value: %v", tup)
		}
	})
	w, err := sym.World.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("world table should have the 3 A-values, got\n%s", w)
	}
}

// TestFigure5GroupStep reproduces Figure 5(d–e): pγ^{A,B}_B(χ_A(R))
// evaluated via the translation matches the reference semantics, and the
// answer table contains the six tuples of R3.
func TestFigure5GroupStep(t *testing.T) {
	ws := worldset.FromDB([]string{"R", "S"},
		[]*relation.Relation{datagen.Fig5R(), datagen.Fig5S()})
	q := wsa.NewPossGroup([]string{"B"}, []string{"A", "B"},
		&wsa.Choice{Attrs: []string{"A"}, From: &wsa.Rel{Name: "R"}})
	checkAgainstReference(t, q, ws)

	// The inlined answer (before decoding) has 6 (A, B, world) rows:
	// worlds 1 and 3 each carry {(1,2), (3,2)}, world 2 carries
	// {(2,3), (2,4)} — exactly R3 of Figure 5(e).
	db := ra.DB{"R": datagen.Fig5R(), "S": datagen.Fig5S()}
	tr := NewTranslator(db)
	sym, err := tr.Translate(q, InitComplete([]string{"R", "S"}))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := sym.Result.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Len() != 6 {
		t.Fatalf("R3 should have 6 rows as in Figure 5(e), got %d:\n%s", r3.Len(), r3)
	}
}

// TestChoiceKeepsEmptyWorlds checks the Remark 5.5 pad mechanism: a
// choice-of over an answer that is empty in some world keeps that world
// alive under the pad id, so a subsequent cert returns the empty
// relation rather than a wrong non-empty one.
func TestChoiceKeepsEmptyWorlds(t *testing.T) {
	schema := relation.NewSchema("Dep", "Arr")
	ws := worldset.New([]string{"F"}, []relation.Schema{schema})
	ws.Add(worldset.World{relation.FromRows(schema, strTuple("FRA", "BCN"))})
	ws.Add(worldset.World{relation.New(schema)}) // an empty world

	q := wsa.NewCert(&wsa.Project{Columns: []string{"Arr"},
		From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "F"}}})
	checkAgainstReference(t, q, ws)
}

// TestConservativityAcquisition checks Theorem 5.7 on the paper's
// acquisition query: the generated relational algebra query returns
// {ACME} on the complete database.
func TestConservativityAcquisition(t *testing.T) {
	chosen := &wsa.Choice{
		Attrs: []string{"c2", "e2"},
		From: &wsa.Rename{
			Pairs: []ra.RenamePair{{From: "CID", To: "c2"}, {From: "EID", To: "e2"}},
			From:  &wsa.Rel{Name: "Company_Emp"},
		},
	}
	v := &wsa.Project{
		Columns: []string{"CID", "EID"},
		From: &wsa.Join{
			L:    &wsa.Rel{Name: "Company_Emp"},
			R:    chosen,
			Pred: ra.And{L: ra.Eq("CID", "c2"), R: ra.Ne("EID", "e2")},
		},
	}
	joined := &wsa.Join{
		L:    v,
		R:    &wsa.Rename{Pairs: []ra.RenamePair{{From: "EID", To: "e3"}}, From: &wsa.Rel{Name: "Emp_Skills"}},
		Pred: ra.Eq("EID", "e3"),
	}
	w := wsa.NewCertGroup([]string{"CID"}, []string{"CID", "Skill"}, joined)
	q := wsa.NewPoss(&wsa.Project{
		Columns: []string{"CID"},
		From:    &wsa.Select{Pred: ra.EqConst("Skill", value.Str("Web")), From: w},
	})

	db := ra.DB{
		"Company_Emp": datagen.PaperCompanyEmp(),
		"Emp_Skills":  datagen.PaperEmpSkills(),
	}
	got, err := EvalComplete(q, []string{"Company_Emp", "Emp_Skills"}, db)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(relation.NewSchema("CID"), strTuple("ACME"))
	if !got.Equal(want) {
		t.Fatalf("translated acquisition query = %v, want {ACME}", got)
	}
}

// TestTranslationRejectsNonC2C checks the §4.1 typing gate: a query of
// type 1↦m has no relational equivalent on complete databases.
func TestTranslationRejectsNonC2C(t *testing.T) {
	q := &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}
	db := ra.DB{"HFlights": datagen.PaperFlights()}
	if _, err := ToRelational(q, []string{"HFlights"}, db); err == nil {
		t.Fatal("expected type error for 1↦m query")
	}
}

// TestTranslationRejectsRepair checks Proposition 4.2's consequence:
// repair-by-key is not translatable.
func TestTranslationRejectsRepair(t *testing.T) {
	q := wsa.NewPoss(&wsa.RepairKey{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}})
	db := ra.DB{"HFlights": datagen.PaperFlights()}
	if _, err := ToRelational(q, []string{"HFlights"}, db); err == nil {
		t.Fatal("expected translation error for repair-by-key")
	}
}

// queryZoo returns a diverse set of WSA queries over the schema
// R(A, B), S(C) used by the property tests.
func queryZoo() []wsa.Expr {
	r := func() wsa.Expr { return &wsa.Rel{Name: "R"} }
	s := func() wsa.Expr { return &wsa.Rel{Name: "S"} }
	return []wsa.Expr{
		r(),
		&wsa.Select{Pred: ra.EqConst("A", value.Int(1)), From: r()},
		&wsa.Project{Columns: []string{"B"}, From: r()},
		wsa.NewPoss(r()),
		wsa.NewCert(r()),
		wsa.NewPoss(&wsa.Project{Columns: []string{"A"}, From: r()}),
		wsa.NewCert(&wsa.Project{Columns: []string{"A"}, From: r()}),
		&wsa.Choice{Attrs: []string{"A"}, From: r()},
		&wsa.Choice{Attrs: []string{"A", "B"}, From: r()},
		wsa.NewCert(&wsa.Project{Columns: []string{"B"}, From: &wsa.Choice{Attrs: []string{"A"}, From: r()}}),
		wsa.NewPoss(&wsa.Choice{Attrs: []string{"A"}, From: r()}),
		wsa.NewPossGroup([]string{"B"}, []string{"A", "B"}, &wsa.Choice{Attrs: []string{"A"}, From: r()}),
		wsa.NewCertGroup([]string{"B"}, []string{"A", "B"}, &wsa.Choice{Attrs: []string{"A"}, From: r()}),
		wsa.NewPossGroup([]string{"A"}, []string{"A"}, r()),
		wsa.NewCertGroup([]string{"A"}, []string{"B"}, r()),
		wsa.NewProduct(&wsa.Project{Columns: []string{"A"}, From: r()}, s()),
		wsa.NewUnion(&wsa.Project{Columns: []string{"A"}, From: r()}, s()),
		wsa.NewDiff(&wsa.Project{Columns: []string{"A"}, From: r()}, s()),
		wsa.NewIntersect(&wsa.Project{Columns: []string{"A"}, From: r()}, s()),
		wsa.NewUnion(
			&wsa.Project{Columns: []string{"A"}, From: &wsa.Choice{Attrs: []string{"A"}, From: r()}},
			&wsa.Choice{Attrs: []string{"C"}, From: s()}),
		wsa.NewCert(wsa.NewUnion(
			&wsa.Project{Columns: []string{"A"}, From: &wsa.Choice{Attrs: []string{"A"}, From: r()}},
			&wsa.Choice{Attrs: []string{"C"}, From: s()})),
		wsa.NewPoss(wsa.NewProduct(
			&wsa.Project{Columns: []string{"A"}, From: &wsa.Choice{Attrs: []string{"B"}, From: r()}},
			&wsa.Rename{Pairs: []ra.RenamePair{{From: "C", To: "C2"}}, From: s()})),
		wsa.NewCertGroup([]string{"A"}, []string{"A", "B"},
			&wsa.Choice{Attrs: []string{"A"}, From: r()}),
	}
}

// TestTranslationAgreesOnRandomWorldSets is the central §5 property
// test: for every query in the zoo and random input world-sets, the
// Figure 6 translation evaluated on the inlined representation produces
// exactly the world-set computed by the Figure 3 semantics.
func TestTranslationAgreesOnRandomWorldSets(t *testing.T) {
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	for qi, q := range queryZoo() {
		qi, q := qi, q
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			ws := datagen.RandomWorldSet(rng, names, schemas, 3, 4, 4)
			want, err := wsa.Eval(q, ws)
			if err != nil {
				return false
			}
			got, err := EvalWorldSet(q, ws)
			if err != nil {
				return false
			}
			return got.EqualWorlds(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("query %d (%s): %v", qi, q, err)
		}
	}
}

// TestConservativityProperty is the Theorem 5.7 property: for 1↦1
// queries and random complete databases, the translated RA query on the
// complete database returns the same relation as the reference
// semantics on the singleton world-set.
func TestConservativityProperty(t *testing.T) {
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	for qi, q := range queryZoo() {
		if !wsa.IsCompleteToComplete(q) {
			continue
		}
		qi, q := qi, q
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			db := ra.DB{
				"R": datagen.RandomRelation(rng, schemas[0], 3, 5),
				"S": datagen.RandomRelation(rng, schemas[1], 3, 5),
			}
			ws := worldset.FromDB(names, []*relation.Relation{db["R"], db["S"]})
			wantWS, err := wsa.Eval(q, ws)
			if err != nil {
				return false
			}
			// A 1↦1 query yields one world; its answer is the expected
			// relation.
			worlds := wantWS.Worlds()
			if len(worlds) != 1 {
				return false
			}
			want := worlds[0][len(worlds[0])-1]
			got, err := EvalComplete(q, names, db)
			if err != nil {
				return false
			}
			return got.EqualContents(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("query %d (%s): %v", qi, q, err)
		}
	}
}
