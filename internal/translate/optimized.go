package translate

import (
	"fmt"

	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"
)

// OptSym is the state of the §5.3 optimized translation. In contrast to
// the general translation:
//
//   - base tables are never copied into new worlds: a table (or answer)
//     without id attributes "appears in all worlds";
//   - the world table is maintained symbolically but only referenced by
//     cert and the set operations ∪, ∩, − (the lazy, on-demand approach
//     of §5.3);
//   - the answer of poss and cert is id-free, so the trailing × W of the
//     general translation disappears, and a pure relational algebra
//     query translates to itself.
type OptSym struct {
	// Result computes the answer table; its '#'-prefixed attributes are
	// the world ids it depends on.
	Result ra.Expr
	// World computes the world table over all ids created so far. It is
	// only embedded into Result by cert and the set operations.
	World ra.Expr
}

// TranslateOptimized runs the §5.3 translation of a complete-to-complete
// query. It panics on queries that reference unknown relations only via
// the returned error.
func (tr *Translator) TranslateOptimized(q wsa.Expr) (*OptSym, error) {
	switch n := q.(type) {
	case *wsa.Rel:
		if _, ok := tr.cat.SchemaOf(n.Name); !ok {
			return nil, fmt.Errorf("translate: unknown relation %q", n.Name)
		}
		return &OptSym{Result: &ra.Base{Name: n.Name}, World: ra.Nullary()}, nil

	case *wsa.Select:
		sub, err := tr.TranslateOptimized(n.From)
		if err != nil {
			return nil, err
		}
		sub.Result = &ra.Select{Pred: n.Pred, From: sub.Result}
		return sub, nil

	case *wsa.Project:
		sub, err := tr.TranslateOptimized(n.From)
		if err != nil {
			return nil, err
		}
		s, err := tr.schemaOf(sub.Result)
		if err != nil {
			return nil, err
		}
		cols := append(append([]string{}, n.Columns...), s.IDAttrs()...)
		sub.Result = ra.ProjectNames(sub.Result, cols...)
		return sub, nil

	case *wsa.Rename:
		sub, err := tr.TranslateOptimized(n.From)
		if err != nil {
			return nil, err
		}
		sub.Result = &ra.Rename{Pairs: n.Pairs, From: sub.Result}
		return sub, nil

	case *wsa.Choice:
		sub, err := tr.TranslateOptimized(n.From)
		if err != nil {
			return nil, err
		}
		s, err := tr.schemaOf(sub.Result)
		if err != nil {
			return nil, err
		}
		d, v := s.ValueAttrs(), s.IDAttrs()
		vb := make([]string, len(n.Attrs))
		pairs := make([]ra.RenamePair, len(n.Attrs))
		for i, b := range n.Attrs {
			if !contains(d, b) {
				return nil, fmt.Errorf("translate: choice attribute %q not a value attribute of %v", b, s)
			}
			vb[i] = tr.freshID(b)
			pairs[i] = ra.RenamePair{From: b, To: vb[i]}
		}
		// World ids created by χ_B: π_B of the current answer (§5.3),
		// padded into the running world table so empty worlds survive.
		x := &ra.Rename{Pairs: pairs,
			From: ra.ProjectNames(sub.Result, append(append([]string{}, v...), n.Attrs...)...)}
		sub.World = &ra.LeftOuterPad{L: sub.World, R: x}
		cols := ra.Cols(append(append([]string{}, d...), v...)...)
		for i := range n.Attrs {
			cols = ra.ColsAs(cols, n.Attrs[i], vb[i])
		}
		sub.Result = &ra.Project{Columns: cols, From: sub.Result}
		return sub, nil

	case *wsa.Close:
		sub, err := tr.TranslateOptimized(n.From)
		if err != nil {
			return nil, err
		}
		s, err := tr.schemaOf(sub.Result)
		if err != nil {
			return nil, err
		}
		d, v := s.ValueAttrs(), s.IDAttrs()
		if len(v) == 0 {
			// Id-free answers appear in all worlds: poss and cert are
			// the identity on them.
			return sub, nil
		}
		if n.Kind == wsa.ClosePoss {
			sub.Result = ra.ProjectNames(sub.Result, d...)
			return sub, nil
		}
		// cert: divide by the world table projected to the ids the
		// answer actually depends on. The answer of other worlds is
		// constant in the remaining ids, so the projection is exact.
		divisor := tr.worldProjection(sub.World, v)
		sub.Result = &ra.Divide{L: sub.Result, R: divisor}
		return sub, nil

	case *wsa.Group:
		sub, err := tr.TranslateOptimized(n.From)
		if err != nil {
			return nil, err
		}
		return tr.optimizedGroup(n, sub)

	case *wsa.BinOp:
		return tr.optimizedBinary(n.Kind, n.L, n.R)

	case *wsa.Join:
		sub, err := tr.optimizedBinary(wsa.OpProduct, n.L, n.R)
		if err != nil {
			return nil, err
		}
		sub.Result = &ra.Select{Pred: n.Pred, From: sub.Result}
		return sub, nil

	case *wsa.RepairKey:
		return nil, fmt.Errorf("translate: repair-by-key has no relational algebra equivalent (Proposition 4.2: NP-hard)")
	}
	return nil, fmt.Errorf("translate: unknown operator %T", q)
}

// worldProjection projects the world table to a subset of its ids,
// eliminating the projection entirely when it is the identity.
func (tr *Translator) worldProjection(world ra.Expr, ids relation.Schema) ra.Expr {
	ws, err := tr.schemaOf(world)
	if err == nil && ws.Equal(ids) {
		return world
	}
	return ra.ProjectNames(world, ids...)
}

// optimizedGroup reuses the general pairing construction (which only
// reads the answer table, never the world table) on the optimized
// answer.
func (tr *Translator) optimizedGroup(n *wsa.Group, sub *OptSym) (*OptSym, error) {
	g := &Sym{Result: sub.Result, World: sub.World}
	out, err := tr.groupOnResult(n, g)
	if err != nil {
		return nil, err
	}
	sub.Result = out.Result
	return sub, nil
}

func (tr *Translator) optimizedBinary(kind wsa.BinOpKind, l, r wsa.Expr) (*OptSym, error) {
	t1, err := tr.TranslateOptimized(l)
	if err != nil {
		return nil, err
	}
	t2, err := tr.TranslateOptimized(r)
	if err != nil {
		return nil, err
	}
	w0 := joinWorlds(t1.World, t2.World)
	out := &OptSym{World: w0}

	if kind == wsa.OpProduct {
		s1, err := tr.schemaOf(t1.Result)
		if err != nil {
			return nil, err
		}
		s2, err := tr.schemaOf(t2.Result)
		if err != nil {
			return nil, err
		}
		if len(s1.Intersect(s2)) == 0 {
			out.Result = &ra.Product{L: t1.Result, R: t2.Result}
		} else {
			// Shared ids (nested binary operators): join on them.
			out.Result = &ra.NaturalJoin{L: t1.Result, R: t2.Result}
		}
		return out, nil
	}

	s1, err := tr.schemaOf(t1.Result)
	if err != nil {
		return nil, err
	}
	s2, err := tr.schemaOf(t2.Result)
	if err != nil {
		return nil, err
	}
	d1, d2 := s1.ValueAttrs(), s2.ValueAttrs()
	if len(d1) != len(d2) {
		return nil, fmt.Errorf("translate: %v operands have arities %d and %d", kind, len(d1), len(d2))
	}
	w0s, err := tr.schemaOf(w0)
	if err != nil {
		return nil, err
	}
	lhs := extendToWorlds(t1.Result, s1, w0, w0s, d1, nil)
	rhs := extendToWorlds(t2.Result, s2, w0, w0s, d2, d1)
	switch kind {
	case wsa.OpUnion:
		out.Result = &ra.Union{L: lhs, R: rhs}
	case wsa.OpIntersect:
		out.Result = &ra.Intersect{L: lhs, R: rhs}
	case wsa.OpDiff:
		out.Result = &ra.Diff{L: lhs, R: rhs}
	default:
		return nil, fmt.Errorf("translate: unknown binary kind %v", kind)
	}
	return out, nil
}

// joinWorlds combines two world tables; nullary worlds vanish.
func joinWorlds(w1, w2 ra.Expr) ra.Expr {
	return &ra.NaturalJoin{L: w1, R: w2}
}

// extendToWorlds copies an answer into the combined worlds (natural join
// with w0) and projects to the canonical column order valueNames ++ ids;
// when renameTo is non-nil, value columns are renamed positionally to it
// (aligning the right operand of a set operation to the left one).
func extendToWorlds(result ra.Expr, s relation.Schema, w0 ra.Expr, w0s relation.Schema, valueNames, renameTo []string) ra.Expr {
	joined := &ra.NaturalJoin{L: result, R: w0}
	cols := make([]ra.ProjCol, 0, len(valueNames)+len(w0s))
	for i, v := range valueNames {
		as := v
		if renameTo != nil {
			as = renameTo[i]
		}
		cols = append(cols, ra.ProjCol{As: as, Src: v})
	}
	for _, id := range w0s {
		cols = append(cols, ra.ProjCol{As: id, Src: id})
	}
	return &ra.Project{Columns: cols, From: joined}
}

// ToRelationalOptimized is the §5.3 counterpart of ToRelational: it
// translates a 1↦1 query into a compact relational algebra query (lazy
// world table, no copying) and simplifies the plan. On a pure relational
// algebra input it returns (the simplified form of) that query itself.
func ToRelationalOptimized(q wsa.Expr, names []string, cat ra.Catalog) (ra.Expr, error) {
	if !wsa.IsCompleteToComplete(q) {
		return nil, fmt.Errorf("translate: query has type 1 ↦ %s, not 1 ↦ 1", q.Out(wsa.One))
	}
	if err := checkNames(names, cat); err != nil {
		return nil, err
	}
	tr := NewTranslator(cat)
	sym, err := tr.TranslateOptimized(q)
	if err != nil {
		return nil, err
	}
	s, err := tr.schemaOf(sym.Result)
	if err != nil {
		return nil, err
	}
	e := sym.Result
	if ids := s.IDAttrs(); len(ids) > 0 {
		e = ra.ProjectNames(e, s.ValueAttrs()...)
	}
	return ra.SimplifyWith(e, cat, ra.SimplifyOptions{}), nil
}

// SimplifyPaperForm additionally drops the {⟨⟩} =⊲⊳ X guard that keeps
// empty-answer worlds alive, producing exactly the shapes the paper
// prints (Example 5.8: π_{Arr,Dep}(HFlights) ÷ π_Dep(HFlights)). The
// guard only matters when a choice-of's input can be empty while a
// sibling operand of a set operation is not, so this form is sound for
// single-chain queries; prefer ToRelationalOptimized's output when in
// doubt.
func SimplifyPaperForm(e ra.Expr, cat ra.Catalog) ra.Expr {
	return ra.SimplifyWith(e, cat, ra.SimplifyOptions{DropNullaryOuterPad: true})
}

// EvalCompleteOptimized translates with the optimized scheme and
// evaluates on the complete database.
func EvalCompleteOptimized(q wsa.Expr, names []string, db ra.DB) (*relation.Relation, error) {
	e, err := ToRelationalOptimized(q, names, db)
	if err != nil {
		return nil, err
	}
	return e.Eval(db)
}
