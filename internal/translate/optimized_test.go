package translate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
)

// tripQuery is cert(π_Arr(χ_Dep(HFlights))) — Examples 5.6 and 5.8.
func tripQuery() wsa.Expr {
	return wsa.NewCert(&wsa.Project{Columns: []string{"Arr"},
		From: &wsa.Choice{Attrs: []string{"Dep"}, From: &wsa.Rel{Name: "HFlights"}}})
}

// TestExample58Optimized reproduces Example 5.8: the optimized
// translation of the trip-planning query collapses to a division of two
// projections of HFlights — the form π_{Arr,Dep}(HFlights) ÷
// π_Dep(HFlights) of the paper, modulo the renaming of the copied Dep
// column to a world-id attribute.
func TestExample58Optimized(t *testing.T) {
	db := ra.DB{"HFlights": datagen.PaperFlights()}
	sound, err := ToRelationalOptimized(tripQuery(), []string{"HFlights"}, db)
	if err != nil {
		t.Fatal(err)
	}
	e := SimplifyPaperForm(sound, db)

	// Shape: a single division whose operands are (projections of) the
	// base table — and dramatically smaller than the general translation.
	div, ok := e.(*ra.Divide)
	if !ok {
		t.Fatalf("optimized plan is not a division: %s", e)
	}
	if got := ra.Size(e); got > 6 {
		t.Errorf("optimized plan has %d nodes, want ≤ 6: %s", got, e)
	}
	gen, err := ToRelational(tripQuery(), []string{"HFlights"}, db)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Size(e) >= ra.Size(gen) {
		t.Errorf("optimized plan (%d nodes) not smaller than general plan (%d nodes)",
			ra.Size(e), ra.Size(gen))
	}

	// Semantics: equal to the paper's explicit form
	// π_{Arr,Dep}(HFlights) ÷ π_Dep(HFlights) on random databases,
	// including the empty one.
	paperForm := &ra.Divide{
		L: ra.ProjectNames(&ra.Base{Name: "HFlights"}, "Arr", "Dep"),
		R: ra.ProjectNames(&ra.Base{Name: "HFlights"}, "Dep"),
	}
	_ = div
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := ra.DB{"HFlights": datagen.RandomRelation(rng,
			relation.NewSchema("Dep", "Arr"), 4, 8)}
		got, err := e.Eval(d)
		if err != nil {
			return false
		}
		want, err := paperForm.Eval(d)
		if err != nil {
			return false
		}
		return got.EqualContents(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Errorf("optimized plan %s disagrees with the paper's division form: %v", e, err)
	}
	// Empty database edge case.
	empty := ra.DB{"HFlights": relation.New(relation.NewSchema("Dep", "Arr"))}
	got, err := e.Eval(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Errorf("on the empty database the certain arrivals must be empty, got %v", got)
	}
}

// TestOptimizedPureRAPassThrough checks the §5.3 claim that a relational
// algebra query translates to (essentially) itself: no world-id
// machinery appears in the output plan.
func TestOptimizedPureRAPassThrough(t *testing.T) {
	q := &wsa.Select{Pred: ra.Eq("A", "B"),
		From: &wsa.Project{Columns: []string{"A", "B"}, From: &wsa.Rel{Name: "R"}}}
	db := ra.DB{"R": relation.New(relation.NewSchema("A", "B", "C"))}
	e, err := ToRelationalOptimized(q, []string{"R"}, db)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Schema(db)
	if err != nil {
		t.Fatal(err)
	}
	if ids := s.IDAttrs(); len(ids) != 0 {
		t.Errorf("pure RA query acquired world ids: %v in %s", ids, e)
	}
	if got, want := e.String(), "σ[A=B](π[A,B](R))"; got != want {
		t.Errorf("expected the identity translation %q, got %q", want, got)
	}
}

// TestOptimizedConservativityProperty checks that the optimized
// translation agrees with both the general translation and the reference
// semantics for every 1↦1 query in the zoo on random complete databases.
func TestOptimizedConservativityProperty(t *testing.T) {
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	for qi, q := range queryZoo() {
		if !wsa.IsCompleteToComplete(q) {
			continue
		}
		qi, q := qi, q
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			db := ra.DB{
				"R": datagen.RandomRelation(rng, schemas[0], 3, 5),
				"S": datagen.RandomRelation(rng, schemas[1], 3, 5),
			}
			ws := worldset.FromDB(names, []*relation.Relation{db["R"], db["S"]})
			wantWS, err := wsa.Eval(q, ws)
			if err != nil {
				return false
			}
			worlds := wantWS.Worlds()
			if len(worlds) != 1 {
				return false
			}
			want := worlds[0][len(worlds[0])-1]
			got, err := EvalCompleteOptimized(q, names, db)
			if err != nil {
				return false
			}
			return got.EqualContents(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("query %d (%s): %v", qi, q, err)
		}
	}
}

// TestOptimizedSmallerThanGeneral quantifies the §5.3 claim: across the
// 1↦1 query zoo, the optimized plan never has more nodes than the
// general plan.
func TestOptimizedSmallerThanGeneral(t *testing.T) {
	names := []string{"R", "S"}
	cat := ra.SchemaCatalog{
		"R": relation.NewSchema("A", "B"),
		"S": relation.NewSchema("C"),
	}
	for qi, q := range queryZoo() {
		if !wsa.IsCompleteToComplete(q) {
			continue
		}
		gen, err := ToRelational(q, names, cat)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		opt, err := ToRelationalOptimized(q, names, cat)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if ra.Size(opt) > ra.Size(gen) {
			t.Errorf("query %d (%s): optimized plan larger than general (%d > %d)\nopt: %s\ngen: %s",
				qi, q, ra.Size(opt), ra.Size(gen), opt, gen)
		}
	}
}
