// Package uldb implements the minimal fragment of ULDBs (databases with
// uncertainty and lineage, the Trio data model) needed to reproduce
// Remark 4.6 of the paper: x-relations whose x-tuples have alternatives,
// optional '?' (maybe) markers, and lineage pointing to alternatives of
// other x-tuples; plus the TriQL horizontal-selection query that
// witnesses TriQL's lack of genericity.
package uldb

import (
	"fmt"
	"strings"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
)

// AltRef identifies one alternative of an x-tuple: (tuple id, 1-based
// alternative index).
type AltRef struct {
	Tuple string
	Alt   int
}

// XTuple is an uncertain tuple: a set of mutually exclusive alternative
// value tuples, an optional maybe marker ('?'), and per-alternative
// lineage.
type XTuple struct {
	ID string
	// Alternatives are the possible values of the tuple; exactly one is
	// chosen in a world where the tuple is present.
	Alternatives []relation.Tuple
	// Maybe marks the tuple as optional ('?'): it may be absent.
	Maybe bool
	// Lineage[i] lists the external alternatives alternative i depends
	// on; an alternative can only appear in worlds that chose all of
	// its lineage alternatives.
	Lineage [][]AltRef
}

// XRelation is an uncertain relation.
type XRelation struct {
	Name   string
	Schema relation.Schema
	Tuples []*XTuple
}

// ULDB is a set of x-relations plus the external alternatives lineage
// may reference (modelled as one implicit choice per external tuple id).
type ULDB struct {
	Relations []*XRelation
	// External maps an external x-tuple id to its number of
	// alternatives; worlds choose one alternative for each.
	External map[string]int
}

// Worlds enumerates the represented set of possible worlds: one world
// per combination of (a) an alternative for every external id and (b)
// presence/choice for every x-tuple consistent with lineage and maybe
// markers. Duplicate worlds collapse (set semantics), exactly the notion
// used in Remark 4.6.
func (u *ULDB) Worlds() (*worldset.WorldSet, error) {
	names := make([]string, len(u.Relations))
	schemas := make([]relation.Schema, len(u.Relations))
	for i, r := range u.Relations {
		names[i] = r.Name
		schemas[i] = r.Schema
	}
	ws := worldset.New(names, schemas)

	extIDs := make([]string, 0, len(u.External))
	for id := range u.External {
		extIDs = append(extIDs, id)
	}
	sortStrings(extIDs)

	extChoice := map[string]int{}
	var enumerateExt func(i int) error
	enumerateExt = func(i int) error {
		if i == len(extIDs) {
			return u.enumerateTuples(ws, extChoice)
		}
		for alt := 1; alt <= u.External[extIDs[i]]; alt++ {
			extChoice[extIDs[i]] = alt
			if err := enumerateExt(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := enumerateExt(0); err != nil {
		return nil, err
	}
	return ws, nil
}

// enumerateTuples enumerates tuple choices for a fixed external choice.
func (u *ULDB) enumerateTuples(ws *worldset.WorldSet, ext map[string]int) error {
	// Collect per-tuple options: -1 means absent.
	type slot struct {
		rel  int
		xt   *XTuple
		opts []int
	}
	var slots []slot
	for ri, r := range u.Relations {
		for _, xt := range r.Tuples {
			s := slot{rel: ri, xt: xt}
			if xt.Maybe {
				s.opts = append(s.opts, -1)
			}
			for ai := range xt.Alternatives {
				ok := true
				if ai < len(xt.Lineage) {
					for _, ref := range xt.Lineage[ai] {
						chosen, isExt := ext[ref.Tuple]
						if !isExt {
							return fmt.Errorf("uldb: lineage references unknown external tuple %q", ref.Tuple)
						}
						if chosen != ref.Alt {
							ok = false
							break
						}
					}
				}
				if ok {
					s.opts = append(s.opts, ai)
				}
			}
			if len(s.opts) == 0 {
				// No consistent alternative and not maybe: tuple absent.
				s.opts = append(s.opts, -1)
			}
			slots = append(slots, s)
		}
	}
	choice := make([]int, len(slots))
	var rec func(i int)
	rec = func(i int) {
		if i == len(slots) {
			world := make(worldset.World, len(u.Relations))
			for ri, r := range u.Relations {
				world[ri] = relation.New(r.Schema)
			}
			for si, s := range slots {
				opt := s.opts[choice[si]]
				if opt >= 0 {
					world[s.rel].Insert(s.xt.Alternatives[opt])
				}
			}
			ws.Add(world)
			return
		}
		for ci := range slots[i].opts {
			choice[i] = ci
			rec(i + 1)
		}
	}
	rec(0)
	return nil
}

// HorizontalSelect implements the Remark 4.6 TriQL query
//
//	select * from R where exists [select * from R r1, R r2 where r1.A <> r2.A]
//
// under TriQL's representation-level semantics: an x-tuple is selected
// iff it has at least two distinct alternatives. The horizontal
// subquery inspects the alternatives of the x-tuple itself — which is
// exactly why the query is not generic.
func HorizontalSelect(r *XRelation) *XRelation {
	out := &XRelation{Name: r.Name, Schema: r.Schema}
	for _, xt := range r.Tuples {
		distinct := map[string]bool{}
		for _, alt := range xt.Alternatives {
			distinct[alt.Key()] = true
		}
		if len(distinct) >= 2 {
			out.Tuples = append(out.Tuples, xt)
		}
	}
	return out
}

// String renders the x-relation in the style of Remark 4.6.
func (r *XRelation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%v\n", r.Name, []string(r.Schema))
	for _, xt := range r.Tuples {
		alts := make([]string, len(xt.Alternatives))
		for i, a := range xt.Alternatives {
			alts[i] = a.String()
		}
		maybe := ""
		if xt.Maybe {
			maybe = " ?"
		}
		lineage := ""
		if len(xt.Lineage) > 0 {
			parts := []string{}
			for ai, refs := range xt.Lineage {
				for _, ref := range refs {
					parts = append(parts, fmt.Sprintf("alt%d→(%s,%d)", ai+1, ref.Tuple, ref.Alt))
				}
			}
			if len(parts) > 0 {
				lineage = " λ{" + strings.Join(parts, ", ") + "}"
			}
		}
		fmt.Fprintf(&b, "  %s %s%s%s\n", xt.ID, strings.Join(alts, " || "), lineage, maybe)
	}
	return b.String()
}

// IntTuple builds an integer tuple.
func IntTuple(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(v)
	}
	return t
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
