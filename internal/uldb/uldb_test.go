package uldb

import (
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
)

// u1 builds the ULDB U1 of Remark 4.6: one maybe x-tuple t1 with
// alternatives (1) and (2) and no lineage.
func u1() *ULDB {
	return &ULDB{
		Relations: []*XRelation{{
			Name:   "R",
			Schema: relation.NewSchema("A"),
			Tuples: []*XTuple{{
				ID:           "t1",
				Alternatives: []relation.Tuple{IntTuple(1), IntTuple(2)},
				Maybe:        true,
			}},
		}},
	}
}

// u2 builds the ULDB U2 of Remark 4.6: two maybe x-tuples with one
// alternative each, whose lineage points to the two alternatives of an
// external x-tuple s1 (so they are mutually exclusive).
func u2() *ULDB {
	return &ULDB{
		External: map[string]int{"s1": 2},
		Relations: []*XRelation{{
			Name:   "R",
			Schema: relation.NewSchema("A"),
			Tuples: []*XTuple{
				{
					ID:           "t1",
					Alternatives: []relation.Tuple{IntTuple(1)},
					Maybe:        true,
					Lineage:      [][]AltRef{{{Tuple: "s1", Alt: 1}}},
				},
				{
					ID:           "t2",
					Alternatives: []relation.Tuple{IntTuple(2)},
					Maybe:        true,
					Lineage:      [][]AltRef{{{Tuple: "s1", Alt: 2}}},
				},
			},
		}},
	}
}

// expectedWorlds is the three-world set {A}={1}, {B}={2}, {C}={} that
// both U1 and U2 represent.
func expectedWorlds() *worldset.WorldSet {
	schema := relation.NewSchema("A")
	ws := worldset.New([]string{"R"}, []relation.Schema{schema})
	ws.Add(worldset.World{relation.FromRows(schema, IntTuple(1))})
	ws.Add(worldset.World{relation.FromRows(schema, IntTuple(2))})
	ws.Add(worldset.World{relation.New(schema)})
	return ws
}

// TestU1U2RepresentSameWorlds checks the premise of Remark 4.6: U1 and
// U2 are different representations of the same set of three worlds.
func TestU1U2RepresentSameWorlds(t *testing.T) {
	w1, err := u1().Worlds()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := u2().Worlds()
	if err != nil {
		t.Fatal(err)
	}
	want := expectedWorlds()
	if !w1.Equal(want) {
		t.Fatalf("U1 worlds:\n%s\nwant:\n%s", w1, want)
	}
	if !w2.Equal(want) {
		t.Fatalf("U2 worlds:\n%s\nwant:\n%s", w2, want)
	}
	if !w1.Equal(w2) {
		t.Fatal("U1 and U2 must represent identical world-sets")
	}
}

// TestTriQLNonGenericity reproduces the Remark 4.6 counterexample: the
// horizontal-selection query q returns the identity on U1 but the empty
// x-relation on U2, although the inputs represent the same world-set —
// so the identity isomorphism on the inputs does not extend to the
// outputs, and TriQL is not generic.
func TestTriQLNonGenericity(t *testing.T) {
	q1 := HorizontalSelect(u1().Relations[0])
	q2 := HorizontalSelect(u2().Relations[0])

	if len(q1.Tuples) != 1 {
		t.Fatalf("q(U1) should keep the two-alternative x-tuple, got %d tuples", len(q1.Tuples))
	}
	if len(q2.Tuples) != 0 {
		t.Fatalf("q(U2) should be empty, got %d tuples", len(q2.Tuples))
	}

	// Interpret the answers as world-sets and exhibit the violation:
	// the inputs are isomorphic (identical), the outputs are not.
	a1 := &ULDB{Relations: []*XRelation{q1}}
	a2 := &ULDB{External: map[string]int{"s1": 2}, Relations: []*XRelation{q2}}
	w1, err := a1.Worlds()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := a2.Worlds()
	if err != nil {
		t.Fatal(err)
	}
	if w1.Equal(w2) {
		t.Fatal("expected the query answers to represent different world-sets")
	}
	if _, iso := worldset.Isomorphic(w1, w2); iso {
		t.Fatal("expected no isomorphism between q(U1) and q(U2) world-sets")
	}
}
