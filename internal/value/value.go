// Package value implements the scalar values that populate relations:
// integers, floats, strings and booleans, plus the distinguished padding
// constant c used by the padded left outer join of Remark 5.5 in
// "From Complete to Incomplete Information and Back" (SIGMOD 2007).
//
// Values are small immutable structs with a total order across kinds so
// that relations can be deterministically sorted and hashed.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"worldsetdb/internal/hashkey"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

const (
	// KindNull is the zero Value. It never appears in paper examples but
	// gives the zero value.Value a well-defined meaning.
	KindNull Kind = iota
	// KindBool is a boolean.
	KindBool
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a Go string.
	KindString
	// KindPad is the distinguished constant c of Remark 5.5, used to pad
	// tuples without a join partner in the =⊲⊳ operator. It encodes the
	// world id of "the world where the relation was empty".
	KindPad
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindPad:
		return "pad"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a scalar database value. The zero Value is Null.
type Value struct {
	kind Kind
	i    int64 // int payload; 0/1 for bool
	f    float64
	s    string
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Pad returns the distinguished padding constant c of Remark 5.5.
func Pad() Value { return Value{kind: KindPad} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsPad reports whether v is the padding constant c.
func (v Value) IsPad() bool { return v.kind == KindPad }

// AsInt returns the integer payload. It panics if the kind is not int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric payload as a float64, converting integers.
// It panics on non-numeric kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	}
	panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
}

// AsString returns the string payload. It panics if the kind is not string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s", v.kind))
	}
	return v.s
}

// AsBool returns the bool payload. It panics if the kind is not bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.i != 0
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports value equality. Ints and floats compare numerically
// (Int(2) equals Float(2.0)), matching SQL comparison semantics.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// Compare returns -1, 0 or +1 ordering v against w. The order is total:
// values of different kinds order by kind, except that ints and floats
// compare numerically with each other. Null sorts first, Pad last.
func (v Value) Compare(w Value) int {
	vk, wk := v.orderClass(), w.orderClass()
	if vk != wk {
		if vk < wk {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull, KindPad:
		if w.kind == v.kind {
			return 0
		}
		// Same order class but different kind cannot happen for
		// null/pad since each has its own class.
		return 0
	case KindBool:
		return cmpInt(v.i, w.i)
	case KindInt:
		if w.kind == KindInt {
			return cmpInt(v.i, w.i)
		}
		return cmpFloat(float64(v.i), w.f)
	case KindFloat:
		if w.kind == KindInt {
			return cmpFloat(v.f, float64(w.i))
		}
		return cmpFloat(v.f, w.f)
	case KindString:
		return strings.Compare(v.s, w.s)
	}
	return 0
}

// orderClass groups kinds that compare with one another: numerics share a
// class so Int(2) == Float(2.0).
func (v Value) orderClass() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	case KindPad:
		return 4
	}
	return 5
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Less reports whether v sorts before w.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// String renders the value the way the paper prints table cells.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindPad:
		return "⊥c"
	}
	return "?"
}

// AppendKey appends a compact, injective binary encoding of v to dst.
// Two values have equal encodings iff Compare reports 0; in particular
// Int(2) and Float(2.0) encode identically.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 'n')
	case KindBool:
		if v.i != 0 {
			return append(dst, 'b', 1)
		}
		return append(dst, 'b', 0)
	case KindInt:
		// Encode ints through the float path only when exactly
		// representable so Int(2) and Float(2) coincide; otherwise use
		// a distinct integer tag (floats cannot equal such ints anyway).
		f := float64(v.i)
		if int64(f) == v.i {
			return appendFloatKey(dst, f)
		}
		dst = append(dst, 'i')
		return appendUint64(dst, uint64(v.i))
	case KindFloat:
		return appendFloatKey(dst, v.f)
	case KindString:
		dst = append(dst, 's')
		dst = appendUint64(dst, uint64(len(v.s)))
		return append(dst, v.s...)
	case KindPad:
		return append(dst, 'p')
	}
	return dst
}

func appendFloatKey(dst []byte, f float64) []byte {
	dst = append(dst, 'f')
	return appendUint64(dst, math.Float64bits(f))
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// Key returns the injective encoding of v as a string, suitable as a map
// key.
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// Hash folds v into a running FNV-1a digest without allocating. The
// bytes folded are exactly the bytes AppendKey would produce, so two
// values hash identically iff they encode identically, which holds iff
// Compare reports 0 (in particular Int(2) and Float(2.0) share a
// digest). Hash digests are not injective: callers must confirm
// candidate matches with Compare or Equal.
func (v Value) Hash(h uint64) uint64 {
	switch v.kind {
	case KindNull:
		return hashkey.Byte(h, 'n')
	case KindBool:
		if v.i != 0 {
			return hashkey.Byte(hashkey.Byte(h, 'b'), 1)
		}
		return hashkey.Byte(hashkey.Byte(h, 'b'), 0)
	case KindInt:
		f := float64(v.i)
		if int64(f) == v.i {
			return hashkey.Uint64(hashkey.Byte(h, 'f'), math.Float64bits(f))
		}
		return hashkey.Uint64(hashkey.Byte(h, 'i'), uint64(v.i))
	case KindFloat:
		return hashkey.Uint64(hashkey.Byte(h, 'f'), math.Float64bits(v.f))
	case KindString:
		h = hashkey.Byte(h, 's')
		h = hashkey.Uint64(h, uint64(len(v.s)))
		return hashkey.String(h, v.s)
	case KindPad:
		return hashkey.Byte(h, 'p')
	}
	return h
}

// Parse converts a literal into a Value: quoted strings, integers,
// floats, true/false, null. Unquoted non-numeric text parses as a string.
func Parse(lit string) Value {
	switch lit {
	case "null":
		return Null()
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if len(lit) >= 2 && (lit[0] == '\'' || lit[0] == '"') && lit[len(lit)-1] == lit[0] {
		return Str(lit[1 : len(lit)-1])
	}
	if i, err := strconv.ParseInt(lit, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(lit, 64); err == nil {
		return Float(f)
	}
	return Str(lit)
}
