package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomValue draws a value of a random kind from a small domain so
// collisions (equal values) actually occur in the property tests.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Bool(rng.Intn(2) == 0)
	case 2:
		return Int(int64(rng.Intn(5) - 2))
	case 3:
		return Float(float64(rng.Intn(5)) / 2)
	case 4:
		return Str(string(rune('a' + rng.Intn(3))))
	default:
		return Pad()
	}
}

// TestCompareTotalOrder checks reflexivity, antisymmetry and
// transitivity of Compare on random triples.
func TestCompareTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(rng), randomValue(rng), randomValue(rng)
		if a.Compare(a) != 0 {
			return false
		}
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Transitivity: a ≤ b ∧ b ≤ c ⇒ a ≤ c.
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestKeyInjective checks the fundamental hashing invariant: two values
// have equal keys iff Compare reports equality.
func TestKeyInjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomValue(rng), randomValue(rng)
		return (a.Key() == b.Key()) == (a.Compare(b) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestNumericCrossKindEquality: Int(2) and Float(2.0) must be the same
// value for set semantics (and hash identically).
func TestNumericCrossKindEquality(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Int(2).Key() != Float(2.0).Key() {
		t.Error("Int(2) and Float(2.0) must hash identically")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Int(3).Compare(Float(2.5)) <= 0 {
		t.Error("Int(3) should sort after Float(2.5)")
	}
}

// TestAccessors checks the typed accessors and panic behaviour.
func TestAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Error("AsInt")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat on int")
	}
	if Str("x").AsString() != "x" {
		t.Error("AsString")
	}
	if !Bool(true).AsBool() {
		t.Error("AsBool")
	}
	if !Pad().IsPad() || Pad().IsNull() {
		t.Error("Pad classification")
	}
	defer func() {
		if recover() == nil {
			t.Error("AsInt on a string must panic")
		}
	}()
	Str("x").AsInt()
}

// TestParse checks literal parsing used by the I-SQL layer.
func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"'hello'", Str("hello")},
		{"\"hi\"", Str("hi")},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"null", Null()},
		{"BCN", Str("BCN")},
	}
	for _, c := range cases {
		if got := Parse(c.in); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%s), want %v (%s)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

// TestStringRendering checks the table-cell rendering.
func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		"42":    Int(42),
		"2.5":   Float(2.5),
		"BCN":   Str("BCN"),
		"true":  Bool(true),
		"null":  Null(),
		"⊥c":    Pad(),
		"-7":    Int(-7),
		"false": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestPadDistinctFromAllValues: the padding constant c must differ from
// every data value (Remark 5.5 relies on it never colliding with a real
// world id).
func TestPadDistinctFromAllValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng)
		if v.Kind() == KindPad {
			return true
		}
		return !v.Equal(Pad())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
