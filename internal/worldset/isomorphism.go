package worldset

import (
	"sort"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// Domain returns the sorted set of values occurring in any relation of
// any world of ws (the active domain dom A of Definition 4.3).
func (ws *WorldSet) Domain() []value.Value {
	seen := make(map[string]value.Value)
	ws.Each(func(w World) {
		for _, r := range w {
			r.Each(func(t relation.Tuple) {
				for _, v := range t {
					seen[v.Key()] = v
				}
			})
		}
	})
	out := make([]value.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Bijection is a mapping of domain values, keyed by value.Key().
type Bijection map[string]value.Value

// NewBijection builds a bijection from parallel from/to slices.
func NewBijection(from, to []value.Value) Bijection {
	if len(from) != len(to) {
		panic("worldset: bijection length mismatch")
	}
	b := make(Bijection, len(from))
	for i, f := range from {
		b[f.Key()] = to[i]
	}
	return b
}

// Apply maps a value through the bijection; values outside the mapping
// pass through unchanged.
func (b Bijection) Apply(v value.Value) value.Value {
	if m, ok := b[v.Key()]; ok {
		return m
	}
	return v
}

// ApplyBijection returns θ(A): every value in every relation of every
// world mapped through θ. This is the left-hand side of the genericity
// condition q(A) θ≅ q(θ(A)) of Definition 4.4.
func (ws *WorldSet) ApplyBijection(b Bijection) *WorldSet {
	out := New(ws.names, ws.schemas)
	ws.Each(func(w World) {
		nw := make(World, len(w))
		for i, r := range w {
			nr := relation.New(r.Schema())
			r.Each(func(t relation.Tuple) {
				nt := make(relation.Tuple, len(t))
				for j, v := range t {
					nt[j] = b.Apply(v)
				}
				nr.Insert(nt)
			})
			nw[i] = nr
		}
		out.Add(nw)
	})
	return out
}

// IsomorphicUnder reports whether A θ≅ B for the given bijection θ
// (Definition 4.3): θ(A) and B contain the same worlds.
func IsomorphicUnder(a, b *WorldSet, theta Bijection) bool {
	return a.ApplyBijection(theta).EqualWorlds(b)
}

// Isomorphic searches for a bijection θ: dom A → dom B with A θ≅ B.
// It is a backtracking search intended for the small instances that occur
// in tests (the paper's genericity arguments are over abstract domains).
// Candidates are restricted to values of the same order class, since a
// world-set maps to an isomorphic one only if tuple-position kinds line
// up in practice; this prunes the search without affecting the paper's
// examples, where domains are homogeneous.
func Isomorphic(a, b *WorldSet) (Bijection, bool) {
	da, db := a.Domain(), b.Domain()
	if len(da) != len(db) {
		return nil, false
	}
	theta := make(Bijection, len(da))
	used := make([]bool, len(db))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(da) {
			return IsomorphicUnder(a, b, theta)
		}
		for j, cand := range db {
			if used[j] || cand.Kind() != da[i].Kind() {
				continue
			}
			used[j] = true
			theta[da[i].Key()] = cand
			if rec(i + 1) {
				return true
			}
			used[j] = false
			delete(theta, da[i].Key())
		}
		return false
	}
	if rec(0) {
		return theta, true
	}
	return nil, false
}
