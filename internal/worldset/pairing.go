package worldset

import (
	"worldsetdb/internal/relation"
)

// PairWorlds implements the world-pairing operation discussed in §7 of
// the paper: for each world I and every choice of another world J, it
// creates a world containing I's relations plus, under fresh names, J's
// relations. The operation is generic and expressible in relational
// algebra on inlined representations, but — as §7 proves — it is NOT
// expressible in World-set Algebra: starting from a world-set of 2^n
// subsets of an n-element relation, pairing yields up to 2^(2n) distinct
// worlds, which χ (the only world-creating operator) cannot produce with
// a fixed query. It lives here, outside the algebra, both as the
// paper's expressiveness witness and as a utility for cross-world
// analyses.
//
// The paired copy of relation "R" is named "R"+suffix.
func PairWorlds(ws *WorldSet, suffix string) *WorldSet {
	k := ws.NumRelations()
	names := make([]string, 0, 2*k)
	schemas := make([]relation.Schema, 0, 2*k)
	names = append(names, ws.Names()...)
	schemas = append(schemas, ws.Schemas()...)
	for i, n := range ws.Names() {
		names = append(names, n+suffix)
		schemas = append(schemas, ws.Schemas()[i])
	}
	out := New(names, schemas)
	worlds := ws.Worlds()
	for _, wi := range worlds {
		for _, wj := range worlds {
			nw := make(World, 0, 2*k)
			nw = append(nw, wi...)
			nw = append(nw, wj...)
			out.Add(nw)
		}
	}
	return out
}

// MaxWorldsAfterQuery bounds how many worlds a single World-set Algebra
// query can produce from a world-set with w worlds whose largest
// relation instance has t tuples: every world-creating step is a
// choice-of (or repair-by-key) on some intermediate answer, so the
// per-world multiplicity of one operator is at most the number of
// distinct value combinations in that answer. For a query with c
// choice-of operators whose intermediate answers never exceed m tuples,
// the output has at most w·m^c worlds — polynomial in the input for a
// fixed query, which is the counting argument behind §7's
// inexpressibility of world pairing. The helper exposes the bound for
// tests and documentation.
func MaxWorldsAfterQuery(inputWorlds, maxIntermediateTuples, choiceOps int) int {
	bound := inputWorlds
	for i := 0; i < choiceOps; i++ {
		bound *= maxIntermediateTuples
	}
	return bound
}
