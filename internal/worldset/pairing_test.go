package worldset

import (
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// powersetWorldSet builds the §7 construction: all 2^n subsets of
// {0, …, n−1} as worlds of a unary relation R.
func powersetWorldSet(n int) *WorldSet {
	schema := relation.NewSchema("A")
	ws := New([]string{"R"}, []relation.Schema{schema})
	for mask := 0; mask < 1<<n; mask++ {
		r := relation.New(schema)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				r.Insert(relation.Tuple{value.Int(int64(i))})
			}
		}
		ws.Add(World{r})
	}
	return ws
}

// TestPairWorldsCardinality reproduces the §7 counting argument: pairing
// the 2^n-subset world-set yields (2^n)^2 = 2^(2n) worlds, beyond the
// w·m^c bound of any fixed WSA query on this input.
func TestPairWorldsCardinality(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		ws := powersetWorldSet(n)
		if ws.Len() != 1<<n {
			t.Fatalf("n=%d: input world count = %d, want %d", n, ws.Len(), 1<<n)
		}
		paired := PairWorlds(ws, "'")
		want := (1 << n) * (1 << n)
		if paired.Len() != want {
			t.Fatalf("n=%d: paired world count = %d, want %d", n, paired.Len(), want)
		}
		// Schema doubled with primed names.
		if got := paired.NumRelations(); got != 2 {
			t.Fatalf("paired schema has %d relations, want 2", got)
		}
		if paired.Names()[1] != "R'" {
			t.Fatalf("paired relation name = %q, want R'", paired.Names()[1])
		}
	}
}

// TestPairWorldsDiagonal checks that pairing includes the diagonal
// (every world paired with itself) and all asymmetric pairs.
func TestPairWorldsDiagonal(t *testing.T) {
	ws := powersetWorldSet(1) // worlds {} and {0}
	paired := PairWorlds(ws, "2")
	var sawDiagonalFull, sawAsymmetric bool
	paired.Each(func(w World) {
		l, r := w[0], w[1]
		if l.Len() == 1 && r.Len() == 1 {
			sawDiagonalFull = true
		}
		if l.Len() != r.Len() {
			sawAsymmetric = true
		}
	})
	if !sawDiagonalFull || !sawAsymmetric {
		t.Fatal("pairing must include diagonal and asymmetric combinations")
	}
}

// TestMaxWorldsBound sanity-checks the §7 counting bound: for the
// powerset input the pairing output exceeds what one choice-of (bounded
// by the tuple count of any intermediate answer over the active domain)
// could create.
func TestMaxWorldsBound(t *testing.T) {
	n := 3
	ws := powersetWorldSet(n)
	paired := PairWorlds(ws, "'").Len()
	// A single χ over an answer with at most n·n tuples (any binary
	// combination of the active domain) multiplies the worlds by at most
	// n² per input world.
	bound := MaxWorldsAfterQuery(ws.Len(), n*n, 1)
	if paired > bound {
		t.Logf("pairing (%d worlds) exceeds the one-choice bound (%d): consistent with §7", paired, bound)
	}
	if got := MaxWorldsAfterQuery(4, 3, 2); got != 36 {
		t.Fatalf("bound helper: got %d, want 36", got)
	}
}
