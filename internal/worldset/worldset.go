// Package worldset implements sets of possible worlds: the data model of
// World-set Algebra. A world is an ordered tuple of relations
// ⟨R1, …, Rk⟩ over a shared schema; a world-set is a finite set of such
// worlds with set semantics (duplicate worlds collapse), exactly as in
// §4.1 of the paper.
package worldset

import (
	"fmt"
	"sort"
	"strings"

	"worldsetdb/internal/hashkey"
	"worldsetdb/internal/relation"
)

// World is an ordered tuple of relation instances ⟨R1, …, Rk⟩.
type World []*relation.Relation

// Key returns an injective encoding of the world's contents. It is used
// for deterministic world enumeration; set membership goes through the
// cheaper Hash plus Equal verification.
func (w World) Key() string {
	var b strings.Builder
	for _, r := range w {
		b.WriteString(r.ContentKey())
		b.WriteByte(0x1d)
	}
	return b.String()
}

// Hash returns a digest of the world's contents, built from the
// relations' memoized content hashes without allocating. Equal worlds
// hash equally; collisions are possible, so membership checks verify
// with Equal.
func (w World) Hash() uint64 {
	h := hashkey.Offset
	for _, r := range w {
		h = hashkey.Mix(h, r.ContentHash())
	}
	return h
}

// Clone returns a world with cloned relation instances.
func (w World) Clone() World {
	c := make(World, len(w))
	for i, r := range w {
		c[i] = r.Clone()
	}
	return c
}

// Equal reports whether two worlds have identical relation lists.
func (w World) Equal(u World) bool {
	if len(w) != len(u) {
		return false
	}
	for i := range w {
		if !w[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// PrefixKey encodes only the first k relations, used by the binary
// operator semantics of Figure 3 which pairs worlds agreeing on
// R1, …, Rk.
func (w World) PrefixKey(k int) string {
	var b strings.Builder
	for _, r := range w[:k] {
		b.WriteString(r.ContentKey())
		b.WriteByte(0x1d)
	}
	return b.String()
}

// WorldSet is a finite set of worlds over a shared schema: Names[i] is
// the name of relation i, Schemas[i] its attribute list. All worlds have
// the same number of relations with the same schemas.
type WorldSet struct {
	names   []string
	schemas []relation.Schema
	// worlds buckets the distinct worlds by their content hash; buckets
	// hold the (rare) colliding worlds, verified by World.Equal.
	worlds map[uint64][]World
	n      int
}

// New returns an empty world-set over the given relational schema.
func New(names []string, schemas []relation.Schema) *WorldSet {
	if len(names) != len(schemas) {
		panic("worldset: names/schemas length mismatch")
	}
	return &WorldSet{
		names:   append([]string{}, names...),
		schemas: append([]relation.Schema{}, schemas...),
		worlds:  make(map[uint64][]World),
	}
}

// FromDB returns the singleton world-set {A} for a complete database A,
// given as parallel name and relation lists.
func FromDB(names []string, rels []*relation.Relation) *WorldSet {
	schemas := make([]relation.Schema, len(rels))
	for i, r := range rels {
		schemas[i] = r.Schema()
	}
	ws := New(names, schemas)
	ws.Add(World(rels))
	return ws
}

// Names returns the relation names. Callers must not mutate.
func (ws *WorldSet) Names() []string { return ws.names }

// Schemas returns the per-relation schemas. Callers must not mutate.
func (ws *WorldSet) Schemas() []relation.Schema { return ws.schemas }

// NumRelations returns k, the number of relations per world.
func (ws *WorldSet) NumRelations() int { return len(ws.names) }

// IndexOf returns the position of the named relation, or -1.
func (ws *WorldSet) IndexOf(name string) int {
	for i, n := range ws.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Len returns the number of (distinct) worlds.
func (ws *WorldSet) Len() int { return ws.n }

// contains reports whether an equal world is already in the set.
func (ws *WorldSet) contains(w World) bool {
	for _, u := range ws.worlds[w.Hash()] {
		if w.Equal(u) {
			return true
		}
	}
	return false
}

// Add inserts a world, collapsing duplicates. It panics on schema-arity
// mismatch, which indicates a bug in an operator implementation.
func (ws *WorldSet) Add(w World) bool {
	if len(w) != len(ws.names) {
		panic(fmt.Sprintf("worldset: adding %d-relation world to %d-relation schema", len(w), len(ws.names)))
	}
	for i, r := range w {
		if !r.Schema().Equal(ws.schemas[i]) {
			panic(fmt.Sprintf("worldset: relation %s schema %v does not match world-set schema %v",
				ws.names[i], r.Schema(), ws.schemas[i]))
		}
	}
	h := w.Hash()
	for _, u := range ws.worlds[h] {
		if w.Equal(u) {
			return false
		}
	}
	ws.worlds[h] = append(ws.worlds[h], w)
	ws.n++
	return true
}

// Worlds returns the worlds in a deterministic (key-sorted) order.
func (ws *WorldSet) Worlds() []World {
	type keyed struct {
		key string
		w   World
	}
	ks := make([]keyed, 0, ws.n)
	for _, bucket := range ws.worlds {
		for _, w := range bucket {
			ks = append(ks, keyed{w.Key(), w})
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make([]World, len(ks))
	for i, k := range ks {
		out[i] = k.w
	}
	return out
}

// Each calls f for every world in unspecified order.
func (ws *WorldSet) Each(f func(World)) {
	for _, bucket := range ws.worlds {
		for _, w := range bucket {
			f(w)
		}
	}
}

// Equal reports whether two world-sets have the same schema and the same
// set of worlds.
func (ws *WorldSet) Equal(other *WorldSet) bool {
	if len(ws.names) != len(other.names) || ws.n != other.n {
		return false
	}
	for i := range ws.names {
		if ws.names[i] != other.names[i] || !ws.schemas[i].Equal(other.schemas[i]) {
			return false
		}
	}
	equal := true
	ws.Each(func(w World) {
		if equal && !other.contains(w) {
			equal = false
		}
	})
	return equal
}

// EqualWorlds reports whether the sets of worlds coincide, ignoring
// relation names (but not schemas): useful when comparing results
// produced under different result-relation names.
func (ws *WorldSet) EqualWorlds(other *WorldSet) bool {
	if ws.n != other.n {
		return false
	}
	equal := true
	ws.Each(func(w World) {
		if equal && !other.contains(w) {
			equal = false
		}
	})
	return equal
}

// Extend returns a new world-set whose schema appends the named relation,
// built by calling f on each world to produce the new relation instance.
// Worlds that become identical after extension collapse.
func (ws *WorldSet) Extend(name string, schema relation.Schema, f func(World) *relation.Relation) *WorldSet {
	out := New(append(append([]string{}, ws.names...), name),
		append(append([]relation.Schema{}, ws.schemas...), schema))
	ws.Each(func(w World) {
		nw := make(World, len(w)+1)
		copy(nw, w)
		nw[len(w)] = f(w)
		out.Add(nw)
	})
	return out
}

// DropLast returns a world-set without the last relation of each world.
func (ws *WorldSet) DropLast() *WorldSet {
	k := len(ws.names) - 1
	out := New(ws.names[:k], ws.schemas[:k])
	ws.Each(func(w World) {
		out.Add(append(World{}, w[:k]...))
	})
	return out
}

// Relations returns, for the named relation, its instance in every world
// (deterministic order).
func (ws *WorldSet) Relations(name string) []*relation.Relation {
	i := ws.IndexOf(name)
	if i < 0 {
		return nil
	}
	worlds := ws.Worlds()
	out := make([]*relation.Relation, len(worlds))
	for j, w := range worlds {
		out[j] = w[i]
	}
	return out
}

// String renders the world-set in the style of the paper's figures: each
// world shown as its relations, labelled name^i.
func (ws *WorldSet) String() string {
	var b strings.Builder
	worlds := ws.Worlds()
	fmt.Fprintf(&b, "world-set with %d world(s) over %v\n", len(worlds), ws.names)
	for wi, w := range worlds {
		fmt.Fprintf(&b, "--- world %d ---\n", wi+1)
		for ri, r := range w {
			b.WriteString(r.Render(ws.names[ri]))
		}
	}
	return b.String()
}
