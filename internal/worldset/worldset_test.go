package worldset

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

func tup(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(v)
	}
	return t
}

func schemaA() relation.Schema { return relation.NewSchema("A") }

func mkWorldSet(rels ...*relation.Relation) *WorldSet {
	ws := New([]string{"R"}, []relation.Schema{schemaA()})
	for _, r := range rels {
		ws.Add(World{r})
	}
	return ws
}

// TestDuplicateWorldsCollapse: world-sets have set semantics.
func TestDuplicateWorldsCollapse(t *testing.T) {
	r1 := relation.FromRows(schemaA(), tup(1))
	r2 := relation.FromRows(schemaA(), tup(1))
	ws := mkWorldSet(r1, r2)
	if ws.Len() != 1 {
		t.Fatalf("identical worlds must collapse, got %d", ws.Len())
	}
	if ws.Add(World{relation.FromRows(schemaA(), tup(2))}) != true {
		t.Fatal("new world should insert")
	}
	if ws.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ws.Len())
	}
}

// TestSchemaMismatchPanics: adding a world with the wrong schema is an
// operator bug and must panic loudly.
func TestSchemaMismatchPanics(t *testing.T) {
	ws := New([]string{"R"}, []relation.Schema{schemaA()})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on schema mismatch")
		}
	}()
	ws.Add(World{relation.New(relation.NewSchema("B"))})
}

// TestPrefixKey groups worlds by their first k relations — the pairing
// condition of Figure 3's binary operators.
func TestPrefixKey(t *testing.T) {
	shared := relation.FromRows(schemaA(), tup(1))
	w1 := World{shared, relation.FromRows(schemaA(), tup(2))}
	w2 := World{shared.Clone(), relation.FromRows(schemaA(), tup(3))}
	w3 := World{relation.FromRows(schemaA(), tup(9)), relation.FromRows(schemaA(), tup(2))}
	if w1.PrefixKey(1) != w2.PrefixKey(1) {
		t.Error("equal prefixes must have equal keys")
	}
	if w1.PrefixKey(1) == w3.PrefixKey(1) {
		t.Error("different prefixes must differ")
	}
	if w1.PrefixKey(2) == w2.PrefixKey(2) {
		t.Error("full keys must differ")
	}
}

// TestExtendCollapses: extending two worlds to identical contents merges
// them.
func TestExtendCollapses(t *testing.T) {
	ws := mkWorldSet(
		relation.FromRows(schemaA(), tup(1)),
		relation.FromRows(schemaA(), tup(2)))
	out := ws.Extend("Ans", schemaA(), func(World) *relation.Relation {
		return relation.FromRows(schemaA(), tup(7))
	})
	if out.Len() != 2 {
		t.Fatalf("extension preserves distinct prefixes, got %d", out.Len())
	}
	// Dropping the first relation leaves identical worlds that collapse.
	dropped := New([]string{"Ans"}, []relation.Schema{schemaA()})
	out.Each(func(w World) { dropped.Add(World{w[1]}) })
	if dropped.Len() != 1 {
		t.Fatalf("identical worlds after dropping must collapse, got %d", dropped.Len())
	}
}

// TestApplyBijection maps domains and preserves world count.
func TestApplyBijection(t *testing.T) {
	ws := mkWorldSet(
		relation.FromRows(schemaA(), tup(1)),
		relation.FromRows(schemaA(), tup(2)))
	theta := NewBijection(
		[]value.Value{value.Int(1), value.Int(2)},
		[]value.Value{value.Int(2), value.Int(1)})
	mapped := ws.ApplyBijection(theta)
	if !mapped.EqualWorlds(ws) {
		t.Fatal("swapping 1↔2 maps this world-set onto itself")
	}
	theta2 := NewBijection([]value.Value{value.Int(1)}, []value.Value{value.Int(9)})
	mapped2 := ws.ApplyBijection(theta2)
	if mapped2.EqualWorlds(ws) {
		t.Fatal("mapping 1→9 must change the world-set")
	}
}

// TestIsomorphicSearch finds a bijection between renamed world-sets and
// rejects non-isomorphic ones.
func TestIsomorphicSearch(t *testing.T) {
	a := mkWorldSet(
		relation.FromRows(schemaA(), tup(1)),
		relation.FromRows(schemaA(), tup(2)),
		relation.New(schemaA()))
	b := mkWorldSet(
		relation.FromRows(schemaA(), tup(10)),
		relation.FromRows(schemaA(), tup(20)),
		relation.New(schemaA()))
	theta, ok := Isomorphic(a, b)
	if !ok {
		t.Fatal("a and b are isomorphic (rename 1→10, 2→20)")
	}
	if !IsomorphicUnder(a, b, theta) {
		t.Fatal("returned bijection must witness the isomorphism")
	}
	// c has a world containing both values: structurally different.
	c := mkWorldSet(
		relation.FromRows(schemaA(), tup(10), tup(20)),
		relation.FromRows(schemaA(), tup(20)),
		relation.New(schemaA()))
	if _, ok := Isomorphic(a, c); ok {
		t.Fatal("a and c must not be isomorphic")
	}
}

// TestIsomorphismProperty: applying a random bijection always yields an
// isomorphic world-set, and the search finds a witness.
func TestIsomorphismProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := New([]string{"R"}, []relation.Schema{schemaA()})
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			r := relation.New(schemaA())
			for j := 0; j < rng.Intn(3); j++ {
				r.Insert(tup(int64(rng.Intn(4))))
			}
			ws.Add(World{r})
		}
		dom := ws.Domain()
		perm := rng.Perm(len(dom))
		to := make([]value.Value, len(dom))
		for i, p := range perm {
			// Map into a disjoint range to keep the mapping injective.
			to[i] = value.Int(int64(100 + p))
		}
		theta := NewBijection(dom, to)
		mapped := ws.ApplyBijection(theta)
		if !IsomorphicUnder(ws, mapped, theta) {
			return false
		}
		_, ok := Isomorphic(ws, mapped)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRelationsAccessor returns per-world instances of a named relation.
func TestRelationsAccessor(t *testing.T) {
	ws := mkWorldSet(
		relation.FromRows(schemaA(), tup(1)),
		relation.FromRows(schemaA(), tup(2)))
	rels := ws.Relations("R")
	if len(rels) != 2 {
		t.Fatalf("want 2 instances, got %d", len(rels))
	}
	if ws.Relations("missing") != nil {
		t.Fatal("unknown relation should yield nil")
	}
}

// TestStringRendering sanity-checks the world-set printer used by the
// examples and tools.
func TestStringRendering(t *testing.T) {
	ws := mkWorldSet(relation.FromRows(schemaA(), tup(1)))
	out := ws.String()
	for _, want := range []string{"world-set with 1 world", "world 1", "R", "A"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering misses %q:\n%s", want, out)
		}
	}
}

// TestDropLast removes the answer relation and collapses.
func TestDropLast(t *testing.T) {
	ws := New([]string{"R", "Ans"}, []relation.Schema{schemaA(), schemaA()})
	base := relation.FromRows(schemaA(), tup(1))
	ws.Add(World{base, relation.FromRows(schemaA(), tup(5))})
	ws.Add(World{base.Clone(), relation.FromRows(schemaA(), tup(6))})
	dropped := ws.DropLast()
	if dropped.Len() != 1 {
		t.Fatalf("DropLast should collapse to 1 world, got %d", dropped.Len())
	}
}
