package wsa

import (
	"worldsetdb/internal/ra"
	"worldsetdb/internal/value"
)

// Plan-level parameter binding. A prepared statement compiles to a
// World-set Algebra plan whose predicates may hold $n parameter slots
// (ra.Param operands). The plan — including the prelowering rewrite
// search, the expensive part of compilation — is computed once;
// BindParams then produces an executable copy per EXECUTE by replacing
// the slots with that call's argument constants. Only the spine of
// nodes that actually contain slots is copied; every slot-free subtree
// is shared with the cached plan, which is safe because plans are
// immutable by convention.

// BindParams returns q with every parameter slot $n replaced by the
// constant args[n-1]. A plan without slots is returned unchanged (and
// unshared work is zero); a slot beyond the argument list is an error.
// The input is never mutated, so concurrent executions may bind one
// cached plan simultaneously.
func BindParams(q Expr, args []value.Value) (Expr, error) {
	out, _, err := bindExpr(q, args)
	return out, err
}

func bindExpr(q Expr, args []value.Value) (Expr, bool, error) {
	switch n := q.(type) {
	case *Rel:
		return q, false, nil
	case *Select:
		from, fc, err := bindExpr(n.From, args)
		if err != nil {
			return nil, false, err
		}
		pred, err := ra.BindPred(n.Pred, args)
		if err != nil {
			return nil, false, err
		}
		if !fc && predUnchanged(pred, n.Pred) {
			return q, false, nil
		}
		return &Select{Pred: pred, From: from}, true, nil
	case *Project:
		from, fc, err := bindExpr(n.From, args)
		if err != nil || !fc {
			return q, false, err
		}
		return &Project{Columns: n.Columns, From: from}, true, nil
	case *Rename:
		from, fc, err := bindExpr(n.From, args)
		if err != nil || !fc {
			return q, false, err
		}
		return &Rename{Pairs: n.Pairs, From: from}, true, nil
	case *BinOp:
		l, lc, err := bindExpr(n.L, args)
		if err != nil {
			return nil, false, err
		}
		r, rc, err := bindExpr(n.R, args)
		if err != nil {
			return nil, false, err
		}
		if !lc && !rc {
			return q, false, nil
		}
		return &BinOp{Kind: n.Kind, L: l, R: r}, true, nil
	case *Join:
		l, lc, err := bindExpr(n.L, args)
		if err != nil {
			return nil, false, err
		}
		r, rc, err := bindExpr(n.R, args)
		if err != nil {
			return nil, false, err
		}
		pred, err := ra.BindPred(n.Pred, args)
		if err != nil {
			return nil, false, err
		}
		if !lc && !rc && predUnchanged(pred, n.Pred) {
			return q, false, nil
		}
		return &Join{L: l, R: r, Pred: pred}, true, nil
	case *Choice:
		from, fc, err := bindExpr(n.From, args)
		if err != nil || !fc {
			return q, false, err
		}
		return &Choice{Attrs: n.Attrs, From: from}, true, nil
	case *Group:
		from, fc, err := bindExpr(n.From, args)
		if err != nil || !fc {
			return q, false, err
		}
		return &Group{Kind: n.Kind, GroupBy: n.GroupBy, Proj: n.Proj, From: from}, true, nil
	case *Close:
		from, fc, err := bindExpr(n.From, args)
		if err != nil || !fc {
			return q, false, err
		}
		return &Close{Kind: n.Kind, From: from}, true, nil
	case *RepairKey:
		from, fc, err := bindExpr(n.From, args)
		if err != nil || !fc {
			return q, false, err
		}
		return &RepairKey{Attrs: n.Attrs, From: from}, true, nil
	}
	return q, false, nil
}

// predUnchanged reports that BindPred returned its input (no slot was
// replaced). Predicate values are comparable structs, so identity is a
// plain comparison.
func predUnchanged(bound, orig ra.Pred) bool { return bound == orig }

// MaxParam returns the highest parameter slot $n anywhere in the plan
// (0 when the plan is fully bound and ready to evaluate).
func MaxParam(q Expr) int {
	out := 0
	Walk(q, func(e Expr) {
		switch n := e.(type) {
		case *Select:
			out = max(out, ra.MaxPredParam(n.Pred))
		case *Join:
			out = max(out, ra.MaxPredParam(n.Pred))
		}
	})
	return out
}
