package wsa

import (
	"fmt"
	"sort"
	"sync"

	"worldsetdb/internal/worldset"
)

// Engine dispatch. The system has four evaluation engines for the same
// World-set Algebra semantics — the Figure 3 reference evaluator (this
// package), the Figure 6 translation to relational algebra over the
// inlined representation (internal/translate), the dedicated physical
// operators (internal/physical), and the factorized decomposition
// engine (internal/wsdexec). Each registers itself here under a stable
// name, so callers (cmd/isql, internal/difftest, benchmarks) can pick
// an engine without importing, or even knowing about, all of them.
//
// An engine is registered only once its package is linked in; importing
// internal/difftest (or the cmd tools) links all four.

// EngineFunc evaluates q on a world-set and returns the world-set
// extended with the answer relation, exactly like Eval.
type EngineFunc func(q Expr, ws *worldset.WorldSet) (*worldset.WorldSet, error)

var (
	engineMu sync.RWMutex
	engines  = map[string]EngineFunc{}
)

// RegisterEngine registers an evaluation engine under a unique name.
// It panics on duplicate or empty names: registration happens in
// package init functions, so a collision is a programming error.
func RegisterEngine(name string, f EngineFunc) {
	if name == "" || f == nil {
		panic("wsa: RegisterEngine with empty name or nil engine")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, ok := engines[name]; ok {
		panic(fmt.Sprintf("wsa: engine %q registered twice", name))
	}
	engines[name] = f
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	out := make([]string, 0, len(engines))
	for n := range engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EvalWith evaluates q on ws with the named engine.
func EvalWith(name string, q Expr, ws *worldset.WorldSet) (*worldset.WorldSet, error) {
	engineMu.RLock()
	f, ok := engines[name]
	engineMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wsa: unknown engine %q (registered: %v)", name, EngineNames())
	}
	return f(q, ws)
}

func init() {
	RegisterEngine("reference", Eval)
}
