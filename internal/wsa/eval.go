package wsa

import (
	"fmt"
	"sort"

	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
)

// AnswerName is the name under which the answer relation R_{k+1} is
// carried during evaluation.
const AnswerName = "$ans"

// DefaultMaxWorlds bounds the number of worlds an evaluation may create;
// repair-by-key can be exponential (Proposition 4.2), so the reference
// evaluator refuses runaway world-sets instead of exhausting memory.
const DefaultMaxWorlds = 1 << 20

// Options tune the reference evaluator.
type Options struct {
	// MaxWorlds caps the world-set size; 0 means DefaultMaxWorlds.
	MaxWorlds int
}

func (o *Options) maxWorlds() int {
	if o == nil || o.MaxWorlds == 0 {
		return DefaultMaxWorlds
	}
	return o.MaxWorlds
}

// Eval evaluates q on world-set A per Figure 3, returning a world-set
// over ⟨R1, …, Rk, R_{k+1}⟩ where the added relation (named "$ans")
// holds the answer to q in each world.
func Eval(q Expr, a *worldset.WorldSet) (*worldset.WorldSet, error) {
	return EvalOpts(q, a, nil)
}

// EvalOpts is Eval with explicit options.
func EvalOpts(q Expr, a *worldset.WorldSet, opt *Options) (*worldset.WorldSet, error) {
	env := NewEnv(a.Names(), a.Schemas())
	if _, err := q.Schema(env); err != nil {
		return nil, err
	}
	return eval(q, a, opt)
}

// Run evaluates q on A and names the answer relation. This is the
// public entry point matching the paper's convention that a query
// extends every world with a new named relation.
func Run(q Expr, a *worldset.WorldSet, name string) (*worldset.WorldSet, error) {
	out, err := Eval(q, a)
	if err != nil {
		return nil, err
	}
	return renameLast(out, name), nil
}

// MustRun is Run for tests and examples.
func MustRun(q Expr, a *worldset.WorldSet, name string) *worldset.WorldSet {
	out, err := Run(q, a, name)
	if err != nil {
		panic(err)
	}
	return out
}

// Answers evaluates q and returns only the answer relation of each world
// (deduplicated, deterministic order): the set of possible answers.
func Answers(q Expr, a *worldset.WorldSet) ([]*relation.Relation, error) {
	out, err := Eval(q, a)
	if err != nil {
		return nil, err
	}
	k := out.NumRelations() - 1
	seen := map[string]*relation.Relation{}
	for _, w := range out.Worlds() {
		seen[w[k].ContentKey()] = w[k]
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	res := make([]*relation.Relation, len(keys))
	for i, key := range keys {
		res[i] = seen[key]
	}
	return res, nil
}

func renameLast(ws *worldset.WorldSet, name string) *worldset.WorldSet {
	names := append([]string{}, ws.Names()...)
	names[len(names)-1] = name
	out := worldset.New(names, ws.Schemas())
	ws.Each(func(w worldset.World) { out.Add(w) })
	return out
}

// eval is the recursive Figure-3 evaluator. Every case returns a
// world-set with exactly one more relation than a.
func eval(q Expr, a *worldset.WorldSet, opt *Options) (*worldset.WorldSet, error) {
	env := NewEnv(a.Names(), a.Schemas())
	outSchema, err := q.Schema(env)
	if err != nil {
		return nil, err
	}

	switch n := q.(type) {
	case *Rel:
		idx := a.IndexOf(n.Name)
		if idx < 0 {
			return nil, fmt.Errorf("wsa: unknown relation %q", n.Name)
		}
		return a.Extend(AnswerName, outSchema, func(w worldset.World) *relation.Relation {
			return w[idx]
		}), nil

	case *Select:
		return evalUnary(n.From, a, opt, outSchema, func(r *relation.Relation) (*relation.Relation, error) {
			return (&ra.Select{Pred: n.Pred, From: &ra.Lit{Rel: r}}).Eval(nil)
		})

	case *Project:
		return evalUnary(n.From, a, opt, outSchema, func(r *relation.Relation) (*relation.Relation, error) {
			return ra.ProjectNames(&ra.Lit{Rel: r}, n.Columns...).Eval(nil)
		})

	case *Rename:
		return evalUnary(n.From, a, opt, outSchema, func(r *relation.Relation) (*relation.Relation, error) {
			return (&ra.Rename{Pairs: n.Pairs, From: &ra.Lit{Rel: r}}).Eval(nil)
		})

	case *BinOp:
		return evalBinary(n.L, n.R, a, opt, outSchema, func(l, r *relation.Relation) (*relation.Relation, error) {
			le, re := &ra.Lit{Rel: l}, &ra.Lit{Rel: r}
			switch n.Kind {
			case OpProduct:
				return (&ra.Product{L: le, R: re}).Eval(nil)
			case OpUnion:
				return (&ra.Union{L: le, R: re}).Eval(nil)
			case OpIntersect:
				return (&ra.Intersect{L: le, R: re}).Eval(nil)
			case OpDiff:
				return (&ra.Diff{L: le, R: re}).Eval(nil)
			}
			return nil, fmt.Errorf("wsa: unknown binary operator %v", n.Kind)
		})

	case *Join:
		return evalBinary(n.L, n.R, a, opt, outSchema, func(l, r *relation.Relation) (*relation.Relation, error) {
			return (&ra.Join{L: &ra.Lit{Rel: l}, R: &ra.Lit{Rel: r}, Pred: n.Pred}).Eval(nil)
		})

	case *Choice:
		return evalChoice(n, a, opt, outSchema)

	case *Group:
		return evalGroup(n, a, opt, outSchema, false)

	case *Close:
		// poss = pγ^*_true, cert = cγ^*_true (Figure 3): a single group
		// containing every world. Note this differs from grouping on the
		// empty attribute list, which would separate worlds with empty
		// answers from worlds with non-empty ones.
		g := &Group{From: n.From, GroupBy: nil, Proj: nil}
		if n.Kind == ClosePoss {
			g.Kind = GroupPoss
		} else {
			g.Kind = GroupCert
		}
		return evalGroup(g, a, opt, outSchema, true)

	case *RepairKey:
		return evalRepair(n, a, opt, outSchema)
	}
	return nil, fmt.Errorf("wsa: unknown operator %T", q)
}

// evalUnary evaluates the subquery and maps f over the answer relation of
// each world.
func evalUnary(from Expr, a *worldset.WorldSet, opt *Options, outSchema relation.Schema,
	f func(*relation.Relation) (*relation.Relation, error)) (*worldset.WorldSet, error) {
	sub, err := eval(from, a, opt)
	if err != nil {
		return nil, err
	}
	k := sub.NumRelations() - 1
	out := worldset.New(sub.Names(), replaceLastSchema(sub.Schemas(), outSchema))
	var mapErr error
	sub.Each(func(w worldset.World) {
		if mapErr != nil {
			return
		}
		r, err := f(w[k])
		if err != nil {
			mapErr = err
			return
		}
		nw := make(worldset.World, k+1)
		copy(nw, w[:k])
		nw[k] = r
		out.Add(nw)
	})
	if mapErr != nil {
		return nil, mapErr
	}
	return out, nil
}

// evalBinary implements the binary-operator semantics of Figure 3: the
// operands are evaluated on the same input world-set and their answers
// are combined in every pair of worlds that agree on R1, …, Rk.
func evalBinary(l, r Expr, a *worldset.WorldSet, opt *Options, outSchema relation.Schema,
	f func(l, r *relation.Relation) (*relation.Relation, error)) (*worldset.WorldSet, error) {
	la, err := eval(l, a, opt)
	if err != nil {
		return nil, err
	}
	rb, err := eval(r, a, opt)
	if err != nil {
		return nil, err
	}
	k := a.NumRelations()
	type bucket struct {
		prefix worldset.World
		lasts  []*relation.Relation
	}
	group := func(ws *worldset.WorldSet) map[string]*bucket {
		m := make(map[string]*bucket)
		ws.Each(func(w worldset.World) {
			key := w.PrefixKey(k)
			b, ok := m[key]
			if !ok {
				b = &bucket{prefix: w[:k]}
				m[key] = b
			}
			b.lasts = append(b.lasts, w[k])
		})
		return m
	}
	lm, rm := group(la), group(rb)
	out := worldset.New(la.Names(), replaceLastSchema(la.Schemas(), outSchema))
	for key, lb := range lm {
		rbkt, ok := rm[key]
		if !ok {
			continue
		}
		for _, lr := range lb.lasts {
			for _, rr := range rbkt.lasts {
				res, err := f(lr, rr)
				if err != nil {
					return nil, err
				}
				nw := make(worldset.World, k+1)
				copy(nw, lb.prefix)
				nw[k] = res
				out.Add(nw)
			}
		}
	}
	return out, nil
}

// evalChoice implements χ_U: one world per distinct U-value of the
// answer; worlds with an empty answer survive with the empty relation
// (the "R_{k+1} = ∅ ⇒ v = 1" case of Figure 3).
func evalChoice(n *Choice, a *worldset.WorldSet, opt *Options, outSchema relation.Schema) (*worldset.WorldSet, error) {
	sub, err := eval(n.From, a, opt)
	if err != nil {
		return nil, err
	}
	k := sub.NumRelations() - 1
	out := worldset.New(sub.Names(), sub.Schemas())
	max := opt.maxWorlds()
	var evalErr error
	sub.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		r := w[k]
		if r.Empty() {
			out.Add(w)
			return
		}
		idx, err := r.Schema().Indexes(n.Attrs)
		if err != nil {
			evalErr = err
			return
		}
		// Partition the answer by the chosen attributes through the
		// shared hash grouping (no key strings); rows within a group are
		// distinct because the source relation is a set.
		parts := relation.NewGroupMap(idx, r.Len())
		r.Each(func(t relation.Tuple) { parts.Add(t) })
		for _, grp := range parts.Groups() {
			p := relation.New(r.Schema())
			for _, t := range grp.Rows {
				p.InsertDistinct(t)
			}
			nw := make(worldset.World, k+1)
			copy(nw, w[:k])
			nw[k] = p
			out.Add(nw)
			if out.Len() > max {
				evalErr = fmt.Errorf("wsa: choice-of exceeds world limit %d", max)
				return
			}
		}
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// evalGroup implements pγ^V_U and cγ^V_U (and, with an empty GroupBy and
// full Proj, poss and cert): worlds are grouped by the value of
// π_U(R_{k+1}); within each group the answers are the union or
// intersection of π_V(R'_{k+1}) over the group's worlds.
func evalGroup(n *Group, a *worldset.WorldSet, opt *Options, outSchema relation.Schema, oneGroup bool) (*worldset.WorldSet, error) {
	sub, err := eval(n.From, a, opt)
	if err != nil {
		return nil, err
	}
	k := sub.NumRelations() - 1
	inSchema := sub.Schemas()[k]
	gIdx, err := inSchema.Indexes(n.GroupBy)
	if err != nil {
		return nil, err
	}
	proj := n.ProjOrAll(inSchema)
	pIdx, err := inSchema.Indexes(proj)
	if err != nil {
		return nil, err
	}

	groupKey := func(r *relation.Relation) string {
		if oneGroup {
			return ""
		}
		return r.Project(gIdx, relation.NewSchema(n.GroupBy...)).ContentKey()
	}
	// First pass: aggregate per group.
	agg := make(map[string]*relation.Relation)
	counted := make(map[string]int)
	sub.Each(func(w worldset.World) {
		key := groupKey(w[k])
		projected := w[k].Project(pIdx, outSchema)
		counted[key]++
		cur, ok := agg[key]
		if !ok {
			agg[key] = projected
			return
		}
		if n.Kind == GroupPoss {
			projected.Each(func(t relation.Tuple) { cur.Insert(t) })
		} else {
			next := relation.New(outSchema)
			cur.Each(func(t relation.Tuple) {
				if projected.Contains(t) {
					next.Insert(t)
				}
			})
			agg[key] = next
		}
	})
	// Second pass: each world's answer becomes its group's aggregate.
	out := worldset.New(sub.Names(), replaceLastSchema(sub.Schemas(), outSchema))
	sub.Each(func(w worldset.World) {
		nw := make(worldset.World, k+1)
		copy(nw, w[:k])
		nw[k] = agg[groupKey(w[k])]
		out.Add(nw)
	})
	return out, nil
}

// evalRepair implements repair-by-key: in each world, one new world per
// combination of one tuple chosen for each distinct key value.
func evalRepair(n *RepairKey, a *worldset.WorldSet, opt *Options, outSchema relation.Schema) (*worldset.WorldSet, error) {
	sub, err := eval(n.From, a, opt)
	if err != nil {
		return nil, err
	}
	k := sub.NumRelations() - 1
	max := opt.maxWorlds()
	out := worldset.New(sub.Names(), sub.Schemas())
	var evalErr error
	sub.Each(func(w worldset.World) {
		if evalErr != nil {
			return
		}
		r := w[k]
		idx, err := r.Schema().Indexes(n.Attrs)
		if err != nil {
			evalErr = err
			return
		}
		// Group tuples by key value, deterministically ordered so the
		// enumeration is stable.
		groups := make(map[string][]relation.Tuple)
		var order []string
		for _, t := range r.Tuples() {
			var key []byte
			for _, i := range idx {
				key = t[i].AppendKey(key)
				key = append(key, 0x1f)
			}
			if _, ok := groups[string(key)]; !ok {
				order = append(order, string(key))
			}
			groups[string(key)] = append(groups[string(key)], t)
		}
		// Check blowup before enumerating.
		total := 1
		for _, key := range order {
			total *= len(groups[key])
			if total > max {
				evalErr = fmt.Errorf("wsa: repair-by-key would create more than %d worlds", max)
				return
			}
		}
		choice := make([]int, len(order))
		for {
			repaired := relation.New(r.Schema())
			for gi, key := range order {
				repaired.Insert(groups[key][choice[gi]])
			}
			nw := make(worldset.World, k+1)
			copy(nw, w[:k])
			nw[k] = repaired
			out.Add(nw)
			if out.Len() > max {
				evalErr = fmt.Errorf("wsa: repair-by-key exceeds world limit %d", max)
				return
			}
			// Advance the mixed-radix counter.
			i := 0
			for ; i < len(order); i++ {
				choice[i]++
				if choice[i] < len(groups[order[i]]) {
					break
				}
				choice[i] = 0
			}
			if i == len(order) {
				break
			}
		}
		if len(order) == 0 {
			// Empty relation: single (empty) repair.
			nw := make(worldset.World, k+1)
			copy(nw, w[:k])
			nw[k] = relation.New(r.Schema())
			out.Add(nw)
		}
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

func replaceLastSchema(schemas []relation.Schema, last relation.Schema) []relation.Schema {
	out := append([]relation.Schema{}, schemas...)
	out[len(out)-1] = last
	return out
}
