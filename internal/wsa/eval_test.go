package wsa

import (
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
)

func singleWorld(t *testing.T, names []string, rels ...*relation.Relation) *worldset.WorldSet {
	t.Helper()
	return worldset.FromDB(names, rels)
}

func strTuple(vals ...string) relation.Tuple {
	tup := make(relation.Tuple, len(vals))
	for i, v := range vals {
		tup[i] = value.Str(v)
	}
	return tup
}

// answerContents returns the distinct answer relations of q on ws as a
// map from ContentKey for easy assertions plus the slice itself.
func mustAnswers(t *testing.T, q Expr, ws *worldset.WorldSet) []*relation.Relation {
	t.Helper()
	rs, err := Answers(q, ws)
	if err != nil {
		t.Fatalf("Answers(%s): %v", q, err)
	}
	return rs
}

// TestFigure2ChoiceOf reproduces Figure 2(b): choice-of on Dep over the
// Flights database of Figure 2(a) yields three worlds, one per
// departure airport.
func TestFigure2ChoiceOf(t *testing.T) {
	ws := singleWorld(t, []string{"Flights"}, datagen.PaperFlights())
	q := &Choice{Attrs: []string{"Dep"}, From: &Rel{Name: "Flights"}}
	out, err := Run(q, ws, "FlightsW")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Len(), 3; got != want {
		t.Fatalf("world count = %d, want %d\n%s", got, want, out)
	}
	want := map[string]*relation.Relation{
		"FRA": relation.FromRows(relation.NewSchema("Dep", "Arr"),
			strTuple("FRA", "BCN"), strTuple("FRA", "ATL")),
		"PAR": relation.FromRows(relation.NewSchema("Dep", "Arr"),
			strTuple("PAR", "ATL"), strTuple("PAR", "BCN")),
		"PHL": relation.FromRows(relation.NewSchema("Dep", "Arr"),
			strTuple("PHL", "ATL")),
	}
	matched := 0
	for _, w := range out.Worlds() {
		ans := w[1]
		for dep, exp := range want {
			if ans.Equal(exp) {
				matched++
				_ = dep
			}
		}
	}
	if matched != 3 {
		t.Fatalf("expected the three worlds of Figure 2(b), got\n%s", out)
	}
}

// fig2bWorldSet builds the world-set of Figure 2(b) directly: three
// worlds whose only relation Flights is the per-departure slice.
func fig2bWorldSet() *worldset.WorldSet {
	schema := relation.NewSchema("Dep", "Arr")
	ws := worldset.New([]string{"Flights"}, []relation.Schema{schema})
	ws.Add(worldset.World{relation.FromRows(schema,
		strTuple("FRA", "BCN"), strTuple("FRA", "ATL"))})
	ws.Add(worldset.World{relation.FromRows(schema,
		strTuple("PAR", "ATL"), strTuple("PAR", "BCN"))})
	ws.Add(worldset.World{relation.FromRows(schema,
		strTuple("PHL", "ATL"))})
	return ws
}

// TestExample31Certain reproduces Example 3.1 / Figure 2(d): on the
// world-set of Figure 2(b), `select certain Arr from Flights` extends
// each of the three worlds with F = {ATL}.
func TestExample31Certain(t *testing.T) {
	ws := fig2bWorldSet()
	q := NewCert(&Project{Columns: []string{"Arr"}, From: &Rel{Name: "Flights"}})
	out, err := Run(q, ws, "F")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Len(), 3; got != want {
		t.Fatalf("world count = %d, want %d (certain keeps the input worlds)", got, want)
	}
	wantF := relation.FromRows(relation.NewSchema("Arr"), strTuple("ATL"))
	for _, w := range out.Worlds() {
		if !w[1].Equal(wantF) {
			t.Fatalf("F = %v, want {ATL}", w[1])
		}
	}
}

// TestPossOnFig2b checks the dual: possible arrivals are {ATL, BCN} in
// every world.
func TestPossOnFig2b(t *testing.T) {
	ws := fig2bWorldSet()
	q := NewPoss(&Project{Columns: []string{"Arr"}, From: &Rel{Name: "Flights"}})
	out, err := Run(q, ws, "F")
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows(relation.NewSchema("Arr"), strTuple("ATL"), strTuple("BCN"))
	for _, w := range out.Worlds() {
		if !w[1].Equal(want) {
			t.Fatalf("F = %v, want {ATL, BCN}", w[1])
		}
	}
}

// acquisitionQuery builds the Example 4.1 query:
//
//	poss(π_CID(σ_Skill='Web'(cγ^{CID,Skill}_CID(
//	    π_{CID,EID}(χ_{c2,e2}(δ(Company_Emp)) ⋈_{CID=c2 ∧ EID≠e2} Company_Emp)
//	    ⋈_{EID=e3} δ_{EID→e3}(Emp_Skills)))))
func acquisitionQuery() Expr {
	chosen := &Choice{
		Attrs: []string{"c2", "e2"},
		From: &Rename{
			Pairs: []ra.RenamePair{{From: "CID", To: "c2"}, {From: "EID", To: "e2"}},
			From:  &Rel{Name: "Company_Emp"},
		},
	}
	v := &Project{
		Columns: []string{"CID", "EID"},
		From: &Join{
			L:    &Rel{Name: "Company_Emp"},
			R:    chosen,
			Pred: ra.And{L: ra.Eq("CID", "c2"), R: ra.Ne("EID", "e2")},
		},
	}
	joined := &Join{
		L:    v,
		R:    &Rename{Pairs: []ra.RenamePair{{From: "EID", To: "e3"}}, From: &Rel{Name: "Emp_Skills"}},
		Pred: ra.Eq("EID", "e3"),
	}
	w := NewCertGroup([]string{"CID"}, []string{"CID", "Skill"}, joined)
	return NewPoss(&Project{
		Columns: []string{"CID"},
		From:    &Select{Pred: ra.EqConst("Skill", value.Str("Web")), From: w},
	})
}

// TestAcquisitionScenario walks the §2 acquisition use case: buying one
// company, one key employee leaves, which skills are certain, which
// targets guarantee 'Web'. The paper's answer is {ACME}.
func TestAcquisitionScenario(t *testing.T) {
	ws := singleWorld(t, []string{"Company_Emp", "Emp_Skills"},
		datagen.PaperCompanyEmp(), datagen.PaperEmpSkills())

	// Step U: "buy exactly one company" — two worlds.
	u := &Choice{Attrs: []string{"CID"}, From: &Rel{Name: "Company_Emp"}}
	uOut, err := Run(u, ws, "U")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := uOut.Len(), 2; got != want {
		t.Fatalf("U: world count = %d, want %d", got, want)
	}

	// Step V: "one (key) employee leaves" — five worlds (V1.1..V2.3).
	chosen := &Choice{
		Attrs: []string{"c2", "e2"},
		From: &Rename{
			Pairs: []ra.RenamePair{{From: "CID", To: "c2"}, {From: "EID", To: "e2"}},
			From:  &Rel{Name: "Company_Emp"},
		},
	}
	v := &Project{
		Columns: []string{"CID", "EID"},
		From: &Join{
			L:    &Rel{Name: "Company_Emp"},
			R:    chosen,
			Pred: ra.And{L: ra.Eq("CID", "c2"), R: ra.Ne("EID", "e2")},
		},
	}
	vOut, err := Run(v, ws, "V")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := vOut.Len(), 5; got != want {
		t.Fatalf("V: world count = %d, want %d\n%s", got, want, vOut)
	}

	// Full query: the only guaranteed acquisition target is ACME.
	answers := mustAnswers(t, acquisitionQuery(), ws)
	if len(answers) != 1 {
		t.Fatalf("expected a single possible answer, got %d", len(answers))
	}
	want := relation.FromRows(relation.NewSchema("CID"), strTuple("ACME"))
	if !answers[0].Equal(want) {
		t.Fatalf("acquisition answer = %v, want {ACME}", answers[0])
	}
}

// TestAcquisitionCertainSkills checks the W step of §2: per acquisition
// target, the certain skills are (ACME, Web) and (HAL, Java).
func TestAcquisitionCertainSkills(t *testing.T) {
	ws := singleWorld(t, []string{"Company_Emp", "Emp_Skills"},
		datagen.PaperCompanyEmp(), datagen.PaperEmpSkills())
	chosen := &Choice{
		Attrs: []string{"c2", "e2"},
		From: &Rename{
			Pairs: []ra.RenamePair{{From: "CID", To: "c2"}, {From: "EID", To: "e2"}},
			From:  &Rel{Name: "Company_Emp"},
		},
	}
	v := &Project{
		Columns: []string{"CID", "EID"},
		From: &Join{
			L:    &Rel{Name: "Company_Emp"},
			R:    chosen,
			Pred: ra.And{L: ra.Eq("CID", "c2"), R: ra.Ne("EID", "e2")},
		},
	}
	joined := &Join{
		L:    v,
		R:    &Rename{Pairs: []ra.RenamePair{{From: "EID", To: "e3"}}, From: &Rel{Name: "Emp_Skills"}},
		Pred: ra.Eq("EID", "e3"),
	}
	w := NewCertGroup([]string{"CID"}, []string{"CID", "Skill"}, joined)

	answers := mustAnswers(t, w, ws)
	wantACME := relation.FromRows(relation.NewSchema("CID", "Skill"), strTuple("ACME", "Web"))
	wantHAL := relation.FromRows(relation.NewSchema("CID", "Skill"), strTuple("HAL", "Java"))
	if len(answers) != 2 {
		t.Fatalf("expected two distinct group answers, got %d", len(answers))
	}
	seenACME, seenHAL := false, false
	for _, a := range answers {
		if a.Equal(wantACME) {
			seenACME = true
		}
		if a.Equal(wantHAL) {
			seenHAL = true
		}
	}
	if !seenACME || !seenHAL {
		t.Fatalf("W answers = %v, want {(ACME,Web)} and {(HAL,Java)}", answers)
	}
}

// TestChoiceOnEmptyRelation checks the Figure 3 edge case: choice-of on
// an empty answer produces the world with the empty relation rather than
// dropping the world.
func TestChoiceOnEmptyRelation(t *testing.T) {
	empty := relation.New(relation.NewSchema("Dep", "Arr"))
	ws := singleWorld(t, []string{"Flights"}, empty)
	q := &Choice{Attrs: []string{"Dep"}, From: &Rel{Name: "Flights"}}
	out, err := Run(q, ws, "W")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("world count = %d, want 1", out.Len())
	}
	if !out.Worlds()[0][1].Empty() {
		t.Fatalf("answer should be empty")
	}
}

// TestBinaryPairingRespectsPrefix checks the binary-operator condition
// of Figure 3: answers are only combined across worlds that agree on
// R1, …, Rk.
func TestBinaryPairingRespectsPrefix(t *testing.T) {
	schema := relation.NewSchema("A")
	ws := worldset.New([]string{"R"}, []relation.Schema{schema})
	r1 := relation.FromRows(schema, relation.Tuple{value.Int(1)})
	r2 := relation.FromRows(schema, relation.Tuple{value.Int(2)})
	ws.Add(worldset.World{r1})
	ws.Add(worldset.World{r2})

	// q = R × δ_{A→B}(R): within each world this is the square of R, and
	// never mixes tuples across worlds.
	q := NewProduct(&Rel{Name: "R"},
		&Rename{Pairs: []ra.RenamePair{{From: "A", To: "B"}}, From: &Rel{Name: "R"}})
	out, err := Run(q, ws, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("world count = %d, want 2", out.Len())
	}
	for _, w := range out.Worlds() {
		ans := w[1]
		if ans.Len() != 1 {
			t.Fatalf("answer %v should have exactly the diagonal tuple", ans)
		}
		ans.Each(func(tup relation.Tuple) {
			if !tup[0].Equal(tup[1]) {
				t.Fatalf("cross-world pairing leaked: %v", tup)
			}
		})
	}
}

// TestUnionAcrossSubqueryWorlds checks that a union whose operands
// create worlds produces all combinations of operand worlds derived
// from the same input world (the "possible combinations" side effect
// described in §5.2).
func TestUnionAcrossSubqueryWorlds(t *testing.T) {
	schema := relation.NewSchema("A")
	r := relation.FromRows(schema,
		relation.Tuple{value.Int(1)}, relation.Tuple{value.Int(2)})
	ws := singleWorld(t, []string{"R"}, r)
	q := NewUnion(
		&Choice{Attrs: []string{"A"}, From: &Rel{Name: "R"}},
		&Choice{Attrs: []string{"A"}, From: &Rel{Name: "R"}},
	)
	out, err := Run(q, ws, "Q")
	if err != nil {
		t.Fatal(err)
	}
	// Choice yields worlds {1} and {2} on each side; union of all pairs
	// gives {1}, {2}, {1,2} — three distinct worlds.
	if out.Len() != 3 {
		t.Fatalf("world count = %d, want 3\n%s", out.Len(), out)
	}
}

// TestRepairByKeyCensus reproduces the §2 census scenario: two SSNs with
// two candidate tuples each yield 2·2 = 4 repairs.
func TestRepairByKeyCensus(t *testing.T) {
	ws := singleWorld(t, []string{"Census"}, datagen.PaperCensus())
	q := &RepairKey{Attrs: []string{"SSN"}, From: &Rel{Name: "Census"}}
	out, err := Run(q, ws, "Repaired")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Len(), 4; got != want {
		t.Fatalf("repair count = %d, want %d", got, want)
	}
	for _, w := range out.Worlds() {
		rep := w[1]
		if rep.Len() != 3 {
			t.Fatalf("each repair keeps one tuple per SSN (3 SSNs), got %d", rep.Len())
		}
		// SSN must now be a key.
		seen := map[string]bool{}
		rep.Each(func(tup relation.Tuple) {
			k := tup[0].Key()
			if seen[k] {
				t.Fatalf("repair violates key: %v", rep)
			}
			seen[k] = true
		})
	}
}

// TestRepairByKeyLimit checks that the evaluator refuses exponential
// blowups beyond the configured bound instead of running away.
func TestRepairByKeyLimit(t *testing.T) {
	ws := worldset.FromDB([]string{"Census"}, []*relation.Relation{datagen.Census(40, 40, 1)})
	q := &RepairKey{Attrs: []string{"SSN"}, From: &Rel{Name: "Census"}}
	_, err := EvalOpts(q, ws, &Options{MaxWorlds: 1024})
	if err == nil {
		t.Fatal("expected world-limit error for 2^40 repairs")
	}
}

// TestOperatorTyping spot-checks the §4.1 typing discipline.
func TestOperatorTyping(t *testing.T) {
	flights := &Rel{Name: "Flights"}
	cases := []struct {
		q    Expr
		in   Mult
		want Mult
	}{
		{flights, One, One},
		{flights, Many, Many},
		{&Choice{Attrs: []string{"Dep"}, From: flights}, One, Many},
		{&Choice{Attrs: []string{"Dep"}, From: flights}, Many, Many},
		{NewCert(&Choice{Attrs: []string{"Dep"}, From: flights}), One, One},
		{NewPoss(flights), Many, One},
		{NewPossGroup([]string{"Dep"}, nil, &Choice{Attrs: []string{"Dep"}, From: flights}), One, Many},
		{acquisitionQuery(), One, One},
	}
	for _, c := range cases {
		if got := c.q.Out(c.in); got != c.want {
			t.Errorf("type of %s with input %s: got %s, want %s", c.q, c.in, got, c.want)
		}
	}
	if !IsCompleteToComplete(acquisitionQuery()) {
		t.Error("acquisition query must be complete-to-complete (1↦1)")
	}
}

// TestTripPlanningCertain reproduces the §2 trip-planning query
// cert(π_Arr(χ_Dep(HFlights))): the certain common destination of all
// departures is ATL.
func TestTripPlanningCertain(t *testing.T) {
	ws := singleWorld(t, []string{"HFlights"}, datagen.PaperFlights())
	q := NewCert(&Project{Columns: []string{"Arr"},
		From: &Choice{Attrs: []string{"Dep"}, From: &Rel{Name: "HFlights"}}})
	answers := mustAnswers(t, q, ws)
	want := relation.FromRows(relation.NewSchema("Arr"), strTuple("ATL"))
	if len(answers) != 1 || !answers[0].Equal(want) {
		t.Fatalf("certain arrivals = %v, want {ATL}", answers)
	}
}

// TestGroupWorldsByPoss checks pγ on the Figure 5 data: χ_A(R) followed
// by pγ^{A,B}_B produces, per world, the union of the answers of worlds
// agreeing on π_B.
func TestGroupWorldsByPoss(t *testing.T) {
	ws := singleWorld(t, []string{"R"}, datagen.Fig5R())
	q := NewPossGroup([]string{"B"}, []string{"A", "B"},
		&Choice{Attrs: []string{"A"}, From: &Rel{Name: "R"}})
	out, err := Run(q, ws, "R3")
	if err != nil {
		t.Fatal(err)
	}
	// χ_A(R) yields worlds {(1,2)}, {(2,3),(2,4)}, {(3,2)}. Worlds 1 and
	// 3 share π_B = {2}; their group union is {(1,2),(3,2)}. World 2 is
	// its own group.
	mk := func(a, b int64) relation.Tuple { return relation.Tuple{value.Int(a), value.Int(b)} }
	wantG13 := relation.FromRows(relation.NewSchema("A", "B"), mk(1, 2), mk(3, 2))
	wantG2 := relation.FromRows(relation.NewSchema("A", "B"), mk(2, 3), mk(2, 4))
	if out.Len() != 2 {
		// Worlds 1 and 3 receive identical answers and collapse with
		// identical R — no: R is the same in all worlds, so worlds 1 and
		// 3 collapse into one.
		t.Fatalf("world count = %d, want 2\n%s", out.Len(), out)
	}
	found13, found2 := false, false
	for _, w := range out.Worlds() {
		if w[1].Equal(wantG13) {
			found13 = true
		}
		if w[1].Equal(wantG2) {
			found2 = true
		}
	}
	if !found13 || !found2 {
		t.Fatalf("pγ answers wrong:\n%s", out)
	}
}

// TestGenericity is the Proposition 4.5 property: for a domain bijection
// θ, q(θ(A)) = θ(q(A)).
func TestGenericity(t *testing.T) {
	ws := fig2bWorldSet()
	// θ swaps the two arrival airports and renames a departure.
	theta := worldset.NewBijection(
		[]value.Value{value.Str("ATL"), value.Str("BCN"), value.Str("FRA")},
		[]value.Value{value.Str("BCN"), value.Str("ATL"), value.Str("MUC")},
	)
	queries := []Expr{
		NewCert(&Project{Columns: []string{"Arr"}, From: &Rel{Name: "Flights"}}),
		NewPoss(&Project{Columns: []string{"Arr"}, From: &Rel{Name: "Flights"}}),
		&Choice{Attrs: []string{"Dep"}, From: &Rel{Name: "Flights"}},
		NewPossGroup([]string{"Dep"}, []string{"Arr"}, &Rel{Name: "Flights"}),
	}
	for _, q := range queries {
		qa, err := Eval(q, ws)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		qThetaA, err := Eval(q, ws.ApplyBijection(theta))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !qa.ApplyBijection(theta).EqualWorlds(qThetaA) {
			t.Errorf("genericity violated for %s", q)
		}
	}
}
