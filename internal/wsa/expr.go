// Package wsa implements World-set Algebra: the algebra for the clean
// fragment of I-SQL defined in §4 of "From Complete to Incomplete
// Information and Back" (SIGMOD 2007). It extends relational algebra
// with poss, cert, χ_U (choice-of), pγ^V_U and cγ^V_U (group-worlds-by),
// and — as the §4.1 extension — repair-by-key.
//
// The package provides the query AST with static schema and operator
// type inference (1↦1, 1↦m, m↦1, m↦m), and a reference evaluator that
// implements the compositional semantics of Figure 3 directly on
// world-sets.
package wsa

import (
	"fmt"
	"strings"

	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
)

// Env carries the world-set schema ⟨R1, …, Rk⟩ that queries are typed
// against.
type Env struct {
	names   []string
	schemas []relation.Schema
}

// NewEnv builds an environment from parallel name/schema lists.
func NewEnv(names []string, schemas []relation.Schema) *Env {
	return &Env{names: names, schemas: schemas}
}

// SchemaOf resolves a relation name.
func (e *Env) SchemaOf(name string) (relation.Schema, bool) {
	for i, n := range e.names {
		if n == name {
			return e.schemas[i], true
		}
	}
	return nil, false
}

// Names returns the relation names of the environment.
func (e *Env) Names() []string { return e.names }

// Mult is a world-set cardinality class: a singleton world-set (a
// complete database) or a general world-set.
type Mult int

// Cardinality classes.
const (
	One Mult = iota
	Many
)

func (m Mult) String() string {
	if m == One {
		return "1"
	}
	return "m"
}

func combine(a, b Mult) Mult {
	if a == Many || b == Many {
		return Many
	}
	return One
}

// Expr is a World-set Algebra query.
type Expr interface {
	// Schema infers the schema of the answer relation R_{k+1}.
	Schema(env *Env) (relation.Schema, error)
	// Out returns the output cardinality class given the input class,
	// implementing the operator typing of §4.1.
	Out(in Mult) Mult
	String() string
}

// TypeOf renders a query's type in the paper's notation for a given
// input class, e.g. "1 ↦ 1".
func TypeOf(q Expr, in Mult) string {
	return fmt.Sprintf("%s ↦ %s", in, q.Out(in))
}

// IsCompleteToComplete reports whether q has type 1 ↦ 1 (maps a complete
// database to a complete database), the precondition of Theorem 5.7.
func IsCompleteToComplete(q Expr) bool { return q.Out(One) == One }

// Rel references a relation of the schema: the identity query Ri of
// Figure 3.
type Rel struct{ Name string }

// Schema implements Expr.
func (r *Rel) Schema(env *Env) (relation.Schema, error) {
	s, ok := env.SchemaOf(r.Name)
	if !ok {
		return nil, fmt.Errorf("wsa: unknown relation %q", r.Name)
	}
	return s, nil
}

// Out implements Expr.
func (r *Rel) Out(in Mult) Mult { return in }

func (r *Rel) String() string { return r.Name }

// Select is σ_pred(From), evaluated world by world.
type Select struct {
	Pred ra.Pred
	From Expr
}

// Schema implements Expr.
func (s *Select) Schema(env *Env) (relation.Schema, error) {
	in, err := s.From.Schema(env)
	if err != nil {
		return nil, err
	}
	for _, c := range s.Pred.Columns(nil) {
		if in.Index(c) < 0 {
			return nil, fmt.Errorf("wsa: selection attribute %q not in %v", c, in)
		}
	}
	return in, nil
}

// Out implements Expr.
func (s *Select) Out(in Mult) Mult { return s.From.Out(in) }

func (s *Select) String() string { return fmt.Sprintf("σ[%s](%s)", s.Pred, s.From) }

// Project is π_Columns(From), evaluated world by world.
type Project struct {
	Columns []string
	From    Expr
}

// Schema implements Expr.
func (p *Project) Schema(env *Env) (relation.Schema, error) {
	in, err := p.From.Schema(env)
	if err != nil {
		return nil, err
	}
	out := make(relation.Schema, len(p.Columns))
	for i, c := range p.Columns {
		j := in.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("wsa: projection attribute %q not in %v", c, in)
		}
		out[i] = in[j]
	}
	return relation.NewSchema(out...), nil
}

// Out implements Expr.
func (p *Project) Out(in Mult) Mult { return p.From.Out(in) }

func (p *Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Columns, ","), p.From)
}

// Rename is δ_{A→B,…}(From), evaluated world by world.
type Rename struct {
	Pairs []ra.RenamePair
	From  Expr
}

// Schema implements Expr.
func (r *Rename) Schema(env *Env) (relation.Schema, error) {
	in, err := r.From.Schema(env)
	if err != nil {
		return nil, err
	}
	out := in.Clone()
	for _, p := range r.Pairs {
		i := in.Index(p.From)
		if i < 0 {
			return nil, fmt.Errorf("wsa: rename source %q not in %v", p.From, in)
		}
		out[i] = p.To
	}
	return relation.NewSchema(out...), nil
}

// Out implements Expr.
func (r *Rename) Out(in Mult) Mult { return r.From.Out(in) }

func (r *Rename) String() string {
	parts := make([]string, len(r.Pairs))
	for i, p := range r.Pairs {
		parts[i] = p.From + "→" + p.To
	}
	return fmt.Sprintf("δ[%s](%s)", strings.Join(parts, ","), r.From)
}

// BinOpKind enumerates the binary operators of Figure 3.
type BinOpKind int

// Binary operator kinds.
const (
	OpProduct BinOpKind = iota
	OpUnion
	OpIntersect
	OpDiff
)

func (k BinOpKind) String() string {
	switch k {
	case OpProduct:
		return "×"
	case OpUnion:
		return "∪"
	case OpIntersect:
		return "∩"
	case OpDiff:
		return "−"
	}
	return "?"
}

// BinOp is q1 Op q2 with the pairing semantics of Figure 3: the operation
// applies to combinations of answer relations from worlds agreeing on
// R1, …, Rk.
type BinOp struct {
	Kind BinOpKind
	L, R Expr
}

// NewProduct builds q1 × q2.
func NewProduct(l, r Expr) *BinOp { return &BinOp{Kind: OpProduct, L: l, R: r} }

// NewUnion builds q1 ∪ q2.
func NewUnion(l, r Expr) *BinOp { return &BinOp{Kind: OpUnion, L: l, R: r} }

// NewIntersect builds q1 ∩ q2.
func NewIntersect(l, r Expr) *BinOp { return &BinOp{Kind: OpIntersect, L: l, R: r} }

// NewDiff builds q1 − q2.
func NewDiff(l, r Expr) *BinOp { return &BinOp{Kind: OpDiff, L: l, R: r} }

// Schema implements Expr.
func (b *BinOp) Schema(env *Env) (relation.Schema, error) {
	ls, err := b.L.Schema(env)
	if err != nil {
		return nil, err
	}
	rs, err := b.R.Schema(env)
	if err != nil {
		return nil, err
	}
	if b.Kind == OpProduct {
		if shared := ls.Intersect(rs); len(shared) > 0 {
			return nil, fmt.Errorf("wsa: product operands share attributes %v", shared)
		}
		return ls.Concat(rs), nil
	}
	if len(ls) != len(rs) {
		return nil, fmt.Errorf("wsa: %s operands have arities %d and %d", b.Kind, len(ls), len(rs))
	}
	return ls, nil
}

// Out implements Expr.
func (b *BinOp) Out(in Mult) Mult { return combine(b.L.Out(in), b.R.Out(in)) }

func (b *BinOp) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Kind, b.R) }

// Join is the theta join q1 ⋈_pred q2 used in Example 4.1 and Figures
// 8–9; it abbreviates σ_pred(q1 × q2) and shares the pairing semantics.
type Join struct {
	L, R Expr
	Pred ra.Pred
}

// Schema implements Expr.
func (j *Join) Schema(env *Env) (relation.Schema, error) {
	p := BinOp{Kind: OpProduct, L: j.L, R: j.R}
	s, err := p.Schema(env)
	if err != nil {
		return nil, err
	}
	for _, c := range j.Pred.Columns(nil) {
		if s.Index(c) < 0 {
			return nil, fmt.Errorf("wsa: join attribute %q not in %v", c, s)
		}
	}
	return s, nil
}

// Out implements Expr.
func (j *Join) Out(in Mult) Mult { return combine(j.L.Out(in), j.R.Out(in)) }

func (j *Join) String() string { return fmt.Sprintf("(%s ⋈[%s] %s)", j.L, j.Pred, j.R) }

// Choice is χ_U(From): creates a new world for each combination of
// values of U in the answer relation. Type 1↦m / m↦m.
type Choice struct {
	Attrs []string
	From  Expr
}

// Schema implements Expr.
func (c *Choice) Schema(env *Env) (relation.Schema, error) {
	in, err := c.From.Schema(env)
	if err != nil {
		return nil, err
	}
	if _, err := in.Indexes(c.Attrs); err != nil {
		return nil, fmt.Errorf("wsa: choice-of: %w", err)
	}
	return in, nil
}

// Out implements Expr.
func (c *Choice) Out(Mult) Mult { return Many }

func (c *Choice) String() string {
	return fmt.Sprintf("χ[%s](%s)", strings.Join(c.Attrs, ","), c.From)
}

// GroupKind selects between possible- and certain-group-worlds-by.
type GroupKind int

// Group-worlds-by kinds.
const (
	GroupPoss GroupKind = iota
	GroupCert
)

func (k GroupKind) String() string {
	if k == GroupPoss {
		return "pγ"
	}
	return "cγ"
}

// Group is pγ^Proj_GroupBy(From) or cγ^Proj_GroupBy(From): worlds whose
// answers agree on π_GroupBy are grouped; in each world the answer is
// replaced by the union (pγ) or intersection (cγ) of π_Proj over its
// group. Proj == nil means "*": all attributes of the input.
type Group struct {
	Kind    GroupKind
	GroupBy []string
	Proj    []string // nil means all attributes
	From    Expr
}

// NewPossGroup builds pγ^proj_groupBy(from).
func NewPossGroup(groupBy, proj []string, from Expr) *Group {
	return &Group{Kind: GroupPoss, GroupBy: groupBy, Proj: proj, From: from}
}

// NewCertGroup builds cγ^proj_groupBy(from).
func NewCertGroup(groupBy, proj []string, from Expr) *Group {
	return &Group{Kind: GroupCert, GroupBy: groupBy, Proj: proj, From: from}
}

// ProjOrAll resolves the projection list, expanding nil to all input
// attributes.
func (g *Group) ProjOrAll(in relation.Schema) []string {
	if g.Proj == nil {
		return in
	}
	return g.Proj
}

// Schema implements Expr.
func (g *Group) Schema(env *Env) (relation.Schema, error) {
	in, err := g.From.Schema(env)
	if err != nil {
		return nil, err
	}
	if _, err := in.Indexes(g.GroupBy); err != nil {
		return nil, fmt.Errorf("wsa: group-worlds-by: %w", err)
	}
	proj := g.ProjOrAll(in)
	if _, err := in.Indexes(proj); err != nil {
		return nil, fmt.Errorf("wsa: group-worlds-by projection: %w", err)
	}
	return relation.NewSchema(proj...), nil
}

// Out implements Expr.
func (g *Group) Out(in Mult) Mult { return g.From.Out(in) }

func (g *Group) String() string {
	proj := "*"
	if g.Proj != nil {
		proj = strings.Join(g.Proj, ",")
	}
	return fmt.Sprintf("%s[%s|%s](%s)", g.Kind, strings.Join(g.GroupBy, ","), proj, g.From)
}

// CloseKind selects between poss and cert.
type CloseKind int

// Possible-worlds closing kinds.
const (
	ClosePoss CloseKind = iota
	CloseCert
)

func (k CloseKind) String() string {
	if k == ClosePoss {
		return "poss"
	}
	return "cert"
}

// Close is poss(From) or cert(From): the answer relation is replaced in
// every world by the union (poss) or intersection (cert) of its
// instances across all worlds. Type m↦1.
type Close struct {
	Kind CloseKind
	From Expr
}

// NewPoss builds poss(from).
func NewPoss(from Expr) *Close { return &Close{Kind: ClosePoss, From: from} }

// NewCert builds cert(from).
func NewCert(from Expr) *Close { return &Close{Kind: CloseCert, From: from} }

// Schema implements Expr.
func (c *Close) Schema(env *Env) (relation.Schema, error) { return c.From.Schema(env) }

// Out implements Expr.
func (c *Close) Out(Mult) Mult { return One }

func (c *Close) String() string { return fmt.Sprintf("%s(%s)", c.Kind, c.From) }

// RepairKey is the repair-by-key extension of §4.1: it creates one world
// per maximal repair of the answer relation under the key constraint on
// Attrs (one tuple chosen per distinct key value). Evaluating it is
// NP-hard in general (Proposition 4.2).
type RepairKey struct {
	Attrs []string
	From  Expr
}

// Schema implements Expr.
func (r *RepairKey) Schema(env *Env) (relation.Schema, error) {
	in, err := r.From.Schema(env)
	if err != nil {
		return nil, err
	}
	if _, err := in.Indexes(r.Attrs); err != nil {
		return nil, fmt.Errorf("wsa: repair-by-key: %w", err)
	}
	return in, nil
}

// Out implements Expr.
func (r *RepairKey) Out(Mult) Mult { return Many }

func (r *RepairKey) String() string {
	return fmt.Sprintf("repair[%s](%s)", strings.Join(r.Attrs, ","), r.From)
}

// Equal reports structural equality of two queries via their canonical
// string forms.
func Equal(a, b Expr) bool { return a.String() == b.String() }

// Walk calls f on q and every subquery, pre-order.
func Walk(q Expr, f func(Expr)) {
	f(q)
	switch n := q.(type) {
	case *Select:
		Walk(n.From, f)
	case *Project:
		Walk(n.From, f)
	case *Rename:
		Walk(n.From, f)
	case *BinOp:
		Walk(n.L, f)
		Walk(n.R, f)
	case *Join:
		Walk(n.L, f)
		Walk(n.R, f)
	case *Choice:
		Walk(n.From, f)
	case *Group:
		Walk(n.From, f)
	case *Close:
		Walk(n.From, f)
	case *RepairKey:
		Walk(n.From, f)
	}
}

// Size returns the number of AST nodes in q.
func Size(q Expr) int {
	n := 0
	Walk(q, func(Expr) { n++ })
	return n
}
