package wsa

import (
	"strings"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
)

// intWS builds a world-set over R(A, B) from per-world row lists.
func intWS(worldsRows ...[][2]int64) *worldset.WorldSet {
	schema := relation.NewSchema("A", "B")
	ws := worldset.New([]string{"R"}, []relation.Schema{schema})
	for _, rows := range worldsRows {
		r := relation.New(schema)
		for _, row := range rows {
			r.InsertValues(value.Int(row[0]), value.Int(row[1]))
		}
		ws.Add(worldset.World{r})
	}
	return ws
}

// TestSelectPerWorld: σ filters each world independently.
func TestSelectPerWorld(t *testing.T) {
	ws := intWS(
		[][2]int64{{1, 1}, {2, 2}},
		[][2]int64{{1, 9}},
	)
	q := &Select{Pred: ra.EqConst("A", value.Int(1)), From: &Rel{Name: "R"}}
	out, err := Eval(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("σ must keep both worlds, got %d", out.Len())
	}
	for _, w := range out.Worlds() {
		w[1].Each(func(tup relation.Tuple) {
			if !tup[0].Equal(value.Int(1)) {
				t.Fatalf("selection leaked tuple %v", tup)
			}
		})
	}
}

// TestIntersectAndDiffAcrossWorlds: binary set operations pair answers
// within each world only.
func TestIntersectAndDiffAcrossWorlds(t *testing.T) {
	ws := intWS(
		[][2]int64{{1, 1}, {2, 2}},
		[][2]int64{{2, 2}, {3, 3}},
	)
	left := &Project{Columns: []string{"A"}, From: &Rel{Name: "R"}}
	right := &Project{Columns: []string{"A"},
		From: &Select{Pred: ra.NeConst("A", value.Int(2)), From: &Rel{Name: "R"}}}

	inter, err := Eval(NewIntersect(left, right), ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range inter.Worlds() {
		// Intersection removes exactly the A=2 tuple per world.
		if w[1].Contains(relation.Tuple{value.Int(2)}) {
			t.Fatalf("intersection kept filtered tuple: %v", w[1])
		}
	}
	diff, err := Eval(NewDiff(left, right), ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range diff.Worlds() {
		if w[1].Len() != 1 || !w[1].Contains(relation.Tuple{value.Int(2)}) {
			t.Fatalf("difference should keep exactly the A=2 tuple, got %v", w[1])
		}
	}
}

// TestCertOverDisjointWorlds: certain answers over worlds with nothing
// in common are empty — and the worlds all survive.
func TestCertOverDisjointWorlds(t *testing.T) {
	ws := intWS(
		[][2]int64{{1, 1}},
		[][2]int64{{2, 2}},
	)
	out, err := Eval(NewCert(&Rel{Name: "R"}), ws)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("worlds must survive cert, got %d", out.Len())
	}
	for _, w := range out.Worlds() {
		if !w[1].Empty() {
			t.Fatalf("certain answer should be empty, got %v", w[1])
		}
	}
}

// TestEvalOnEmptyWorldSet: the empty world-set maps to the empty
// world-set under every operator.
func TestEvalOnEmptyWorldSet(t *testing.T) {
	empty := worldset.New([]string{"R"}, []relation.Schema{relation.NewSchema("A", "B")})
	queries := []Expr{
		&Rel{Name: "R"},
		NewPoss(&Rel{Name: "R"}),
		NewCert(&Rel{Name: "R"}),
		&Choice{Attrs: []string{"A"}, From: &Rel{Name: "R"}},
		NewPossGroup([]string{"A"}, []string{"B"}, &Rel{Name: "R"}),
	}
	for _, q := range queries {
		out, err := Eval(q, empty)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if out.Len() != 0 {
			t.Fatalf("%s on the empty world-set produced %d worlds", q, out.Len())
		}
	}
}

// TestSchemaErrors: malformed queries are rejected before evaluation.
func TestSchemaErrors(t *testing.T) {
	ws := intWS([][2]int64{{1, 1}})
	bad := []Expr{
		&Rel{Name: "missing"},
		&Project{Columns: []string{"Z"}, From: &Rel{Name: "R"}},
		&Select{Pred: ra.EqConst("Z", value.Int(1)), From: &Rel{Name: "R"}},
		&Choice{Attrs: []string{"Z"}, From: &Rel{Name: "R"}},
		NewPossGroup([]string{"Z"}, nil, &Rel{Name: "R"}),
		NewProduct(&Rel{Name: "R"}, &Rel{Name: "R"}), // shared attributes
		NewUnion(&Rel{Name: "R"}, &Project{Columns: []string{"A"}, From: &Rel{Name: "R"}}),
	}
	for _, q := range bad {
		if _, err := Eval(q, ws); err == nil {
			t.Errorf("expected error for %s", q)
		}
	}
}

// TestStringForms: the canonical rendering is stable — the rewrite
// engine keys its visited set on it.
func TestStringForms(t *testing.T) {
	q := NewCert(&Project{Columns: []string{"Arr"},
		From: &Choice{Attrs: []string{"Dep"}, From: &Rel{Name: "HFlights"}}})
	want := "cert(π[Arr](χ[Dep](HFlights)))"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	g := NewPossGroup([]string{"Dep"}, nil, &Rel{Name: "F"})
	if got := g.String(); !strings.Contains(got, "pγ[Dep|*]") {
		t.Errorf("group rendering = %q", got)
	}
	r := &RepairKey{Attrs: []string{"SSN"}, From: &Rel{Name: "Census"}}
	if got := r.String(); got != "repair[SSN](Census)" {
		t.Errorf("repair rendering = %q", got)
	}
	if !Equal(q, NewCert(&Project{Columns: []string{"Arr"},
		From: &Choice{Attrs: []string{"Dep"}, From: &Rel{Name: "HFlights"}}})) {
		t.Error("structurally equal queries must compare equal")
	}
}

// TestWalkAndSize: traversal visits every node exactly once.
func TestWalkAndSize(t *testing.T) {
	q := NewUnion(
		&Select{Pred: ra.True{}, From: &Rel{Name: "R"}},
		&Project{Columns: []string{"A"}, From: &Rel{Name: "R"}})
	if got := Size(q); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
	var rels int
	Walk(q, func(e Expr) {
		if _, ok := e.(*Rel); ok {
			rels++
		}
	})
	if rels != 2 {
		t.Errorf("Walk found %d Rel leaves, want 2", rels)
	}
}

// TestAnswersDeduplication: Answers returns each distinct answer once,
// deterministically ordered.
func TestAnswersDeduplication(t *testing.T) {
	ws := worldset.FromDB([]string{"Flights"}, []*relation.Relation{datagen.PaperFlights()})
	q := &Project{Columns: []string{"Arr"},
		From: &Choice{Attrs: []string{"Dep"}, From: &Rel{Name: "Flights"}}}
	answers, err := Answers(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	// FRA and PAR both give {ATL, BCN}; PHL gives {ATL}: two distinct.
	if len(answers) != 2 {
		t.Fatalf("distinct answers = %d, want 2", len(answers))
	}
	a, err := Answers(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range answers {
		if !answers[i].Equal(a[i]) {
			t.Fatal("Answers must be deterministic")
		}
	}
}

// TestGroupCertWithinGroups: cγ intersects only within groups, not
// globally.
func TestGroupCertWithinGroups(t *testing.T) {
	// Worlds: {(1,1)}, {(1,2)}, {(2,3)}. Grouping by A puts the first
	// two together (π_A = {1}) and the third alone.
	ws := intWS(
		[][2]int64{{1, 1}},
		[][2]int64{{1, 2}},
		[][2]int64{{2, 3}},
	)
	q := NewCertGroup([]string{"A"}, []string{"A"}, &Rel{Name: "R"})
	out, err := Eval(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	// Group {1}: ∩π_A = {1}; group {2}: {2}. Every world keeps a
	// non-empty answer — unlike global cert, which would be empty.
	for _, w := range out.Worlds() {
		if w[1].Empty() {
			t.Fatalf("group-cert should not be globally empty:\n%s", out)
		}
	}
	glob, err := Eval(NewCert(&Project{Columns: []string{"A"}, From: &Rel{Name: "R"}}), ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range glob.Worlds() {
		if !w[1].Empty() {
			t.Fatalf("global cert over disjoint worlds must be empty")
		}
	}
}

// TestRenameThenJoin: the δ + ⋈ combination used throughout the paper's
// examples (self-joins with fresh names).
func TestRenameThenJoin(t *testing.T) {
	ws := intWS([][2]int64{{1, 2}, {2, 3}})
	q := &Join{
		L: &Rel{Name: "R"},
		R: &Rename{Pairs: []ra.RenamePair{{From: "A", To: "A2"}, {From: "B", To: "B2"}},
			From: &Rel{Name: "R"}},
		Pred: ra.Eq("B", "A2"),
	}
	out, err := Eval(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	w := out.Worlds()[0]
	// (1,2)⋈(2,3) is the only chain.
	if w[1].Len() != 1 {
		t.Fatalf("join should produce one chain, got %v", w[1])
	}
}
