package wsd

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync/atomic"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
)

// This file extends world-set decompositions from a single relation to
// whole databases: a DecompDB represents a finite set of worlds over
// ⟨R1, …, Rk⟩ as per-relation certain tuples plus independent
// components whose alternatives may contribute tuples to several
// relations at once. The represented world-set is
//
//	rep(D) = { ⟨C1 ∪ a(1), …, Ck ∪ a(k)⟩ | a = (a₁, …, aₙ), aᵢ ∈ Components[i] }
//
// where a(j) is the union of the chosen alternatives' contributions to
// relation j. It has ∏ |Components[i]| worlds in Σ-space, and is the
// input (and output) representation of the factorized query engine in
// internal/wsdexec, which evaluates world-set algebra on it without
// ever enumerating rep(D).

// DBAlternative is one choice of a component: the tuples it contributes
// to each relation, keyed by relation index. Relations without an entry
// receive nothing from this alternative.
type DBAlternative struct {
	Rels map[int]*relation.Relation
}

// Rel returns the alternative's contribution to relation i (possibly
// nil, meaning empty).
func (a DBAlternative) Rel(i int) *relation.Relation { return a.Rels[i] }

// DBComponent is an independent choice: every world contains the
// contribution of exactly one of its alternatives. A component with no
// alternatives makes the represented world-set empty.
type DBComponent struct {
	Alternatives []DBAlternative
	// ID is a stable identity across copy-on-write edits: clone,
	// MapRelation, DropRelation and Normalize carry it through, so a
	// caller holding two versions of a decomposition can match the
	// surviving components without comparing content. Zero means
	// unassigned (operations that build new components — Refactor,
	// merging, world-set lifting — leave it zero); the sharded catalog
	// assigns IDs at snapshot admission and diffs commits by them. IDs
	// never affect the represented world-set.
	ID uint64
}

// DecompDB is a world-set decomposition of a multi-relation world-set.
// All relations listed in Names exist in every world; Certain[i] holds
// the tuples of relation i present in every world.
type DecompDB struct {
	Names      []string
	Schemas    []relation.Schema
	Certain    []*relation.Relation
	Components []DBComponent

	// stats caches the decomposition statistics (see Stats). Normalize
	// pre-fills it; every copy-on-write edit builds a fresh DecompDB, so
	// a cached value can never describe stale structure. Unexported, so
	// JSON persistence skips it and loads recompute lazily.
	stats atomic.Pointer[Stats]
}

// NewDecompDB returns a decomposition with empty certain relations and
// no components: the singleton world-set of the empty database over the
// given schema.
func NewDecompDB(names []string, schemas []relation.Schema) *DecompDB {
	if len(names) != len(schemas) {
		panic("wsd: names/schemas length mismatch")
	}
	certain := make([]*relation.Relation, len(schemas))
	for i, s := range schemas {
		certain[i] = relation.New(s)
	}
	return &DecompDB{
		Names:   append([]string{}, names...),
		Schemas: append([]relation.Schema{}, schemas...),
		Certain: certain,
	}
}

// FromComplete returns the decomposition of the singleton world-set {A}
// for a complete database A: everything certain, no components. The
// relations are shared, not copied; callers must not mutate them
// afterwards.
func FromComplete(names []string, rels []*relation.Relation) *DecompDB {
	schemas := make([]relation.Schema, len(rels))
	for i, r := range rels {
		schemas[i] = r.Schema()
	}
	db := NewDecompDB(names, schemas)
	copy(db.Certain, rels)
	return db
}

// FromWSD lifts a single-relation decomposition into a DecompDB over
// one relation, sharing the underlying relations.
func FromWSD(d *WSD) *DecompDB {
	db := NewDecompDB([]string{d.Name}, []relation.Schema{d.Schema})
	db.Certain[0] = d.Certain
	for _, c := range d.Components {
		comp := DBComponent{}
		for _, a := range c.Alternatives {
			comp.Alternatives = append(comp.Alternatives,
				DBAlternative{Rels: map[int]*relation.Relation{0: a.rel}})
		}
		db.Components = append(db.Components, comp)
	}
	return db
}

// FromWorldSet returns a trivial decomposition of an explicit
// world-set: a singleton world-set becomes all-certain (the best case
// for the factorized engine); otherwise one component with one
// alternative per world. It is always correct, never succinct — the
// "complete to incomplete" direction used to lift world-set inputs and
// fallback outputs into decomposition space.
func FromWorldSet(ws *worldset.WorldSet) *DecompDB {
	db := NewDecompDB(ws.Names(), ws.Schemas())
	worlds := ws.Worlds()
	if len(worlds) == 1 {
		copy(db.Certain, worlds[0])
		return db
	}
	comp := DBComponent{}
	for _, w := range worlds {
		alt := DBAlternative{Rels: make(map[int]*relation.Relation, len(w))}
		for i, r := range w {
			alt.Rels[i] = r
		}
		comp.Alternatives = append(comp.Alternatives, alt)
	}
	db.Components = []DBComponent{comp}
	return db
}

// IndexOf returns the position of the named relation, or -1.
func (db *DecompDB) IndexOf(name string) int {
	for i, n := range db.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Worlds returns the exact represented world count ∏ |Components[i]|.
func (db *DecompDB) Worlds() *big.Int {
	n := big.NewInt(1)
	var m big.Int
	for _, c := range db.Components {
		n.Mul(n, m.SetInt64(int64(len(c.Alternatives))))
	}
	return n
}

// Size returns the representation size: stored tuples across certain
// relations and all alternatives.
func (db *DecompDB) Size() int {
	n := 0
	for _, r := range db.Certain {
		n += r.Len()
	}
	for _, c := range db.Components {
		for _, a := range c.Alternatives {
			for _, r := range a.Rels {
				n += r.Len()
			}
		}
	}
	return n
}

// Expand enumerates the represented world-set. It refuses
// decompositions with more than budget worlds (0 means
// DefaultExpandBudget), returning a *BudgetError so callers can tell
// infeasible enumeration apart from real failures.
func (db *DecompDB) Expand(budget int) (*worldset.WorldSet, error) {
	if budget == 0 {
		budget = DefaultExpandBudget
	}
	n := db.Worlds()
	if !n.IsInt64() || n.Int64() > int64(budget) {
		return nil, &BudgetError{Worlds: n, Budget: budget}
	}
	ws := worldset.New(db.Names, db.Schemas)
	if n.Sign() == 0 {
		return ws, nil
	}
	choice := make([]int, len(db.Components))
	for {
		w := make(worldset.World, len(db.Certain))
		for i, r := range db.Certain {
			w[i] = r.Clone()
		}
		for ci, c := range db.Components {
			for ri, r := range c.Alternatives[choice[ci]].Rels {
				r.Each(func(t relation.Tuple) { w[ri].Insert(t) })
			}
		}
		ws.Add(w)
		i := 0
		for ; i < len(db.Components); i++ {
			choice[i]++
			if choice[i] < len(db.Components[i].Alternatives) {
				break
			}
			choice[i] = 0
		}
		if i == len(db.Components) {
			break
		}
	}
	return ws, nil
}

// String renders the decomposition compactly.
func (db *DecompDB) String() string {
	var b strings.Builder
	certain := 0
	for _, r := range db.Certain {
		certain += r.Len()
	}
	fmt.Fprintf(&b, "DecompDB over %v: %d certain tuple(s), %d component(s), %s world(s), size %d\n",
		db.Names, certain, len(db.Components), db.Worlds(), db.Size())
	for i, c := range db.Components {
		rels := map[int]bool{}
		for _, a := range c.Alternatives {
			for ri := range a.Rels {
				rels[ri] = true
			}
		}
		names := make([]string, 0, len(rels))
		for ri := range rels {
			names = append(names, db.Names[ri])
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  component %d: %d alternatives over %v\n", i+1, len(c.Alternatives), names)
	}
	return b.String()
}
