package wsd_test

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsd"
)

// TestBudgetErrorTyped: expansions over budget fail with *BudgetError
// carrying the exact big world count, so callers can distinguish "too
// big" from genuine failures.
func TestBudgetErrorTyped(t *testing.T) {
	census := datagen.Census(200, 40, 7)
	d, err := wsd.RepairByKey("Census", census, []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 40)
	if d.Worlds().Cmp(want) != 0 {
		t.Fatalf("Worlds() = %s, want 2^40", d.Worlds())
	}
	_, err = d.Rep(0)
	var be *wsd.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("Rep over budget returned %v, want *wsd.BudgetError", err)
	}
	if be.Worlds.Cmp(want) != 0 || be.Budget != wsd.DefaultExpandBudget {
		t.Fatalf("BudgetError = {%s, %d}, want {2^40, %d}", be.Worlds, be.Budget, wsd.DefaultExpandBudget)
	}

	db := wsd.FromWSD(d)
	if db.Worlds().Cmp(want) != 0 {
		t.Fatalf("DecompDB.Worlds() = %s, want 2^40", db.Worlds())
	}
	if _, err := db.Expand(1 << 10); !errors.As(err, &be) {
		t.Fatalf("Expand over budget returned %v, want *wsd.BudgetError", err)
	} else if be.Budget != 1<<10 {
		t.Fatalf("BudgetError budget = %d, want %d", be.Budget, 1<<10)
	}
}

// TestFromWSDExpandMatchesRep: lifting a single-relation decomposition
// preserves the represented world-set.
func TestFromWSDExpandMatchesRep(t *testing.T) {
	d, err := wsd.RepairByKey("Census", datagen.PaperCensus(), []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Rep(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wsd.FromWSD(d).Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("FromWSD expansion differs:\n%s\nvs\n%s", got, want)
	}
}

// TestFromWorldSetRoundTrip: the trivial decomposition of any world-set
// expands back to it, and singletons become all-certain.
func TestFromWorldSetRoundTrip(t *testing.T) {
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := datagen.RandomWorldSet(rng, names, schemas, 3, 3, 4)
		db := wsd.FromWorldSet(ws)
		if ws.Len() == 1 && len(db.Components) != 0 {
			return false
		}
		back, err := db.Expand(0)
		if err != nil {
			return false
		}
		return back.Equal(ws)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDecompDBMultiRelationComponent: one component can contribute
// tuples to several relations at once; expansion distributes the
// contributions correctly.
func TestDecompDBMultiRelationComponent(t *testing.T) {
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A"), relation.NewSchema("B")}
	db := wsd.NewDecompDB(names, schemas)
	db.Certain[0].InsertValues(value.Int(0))
	mk := func(schema relation.Schema, v int64) *relation.Relation {
		r := relation.New(schema)
		r.InsertValues(value.Int(v))
		return r
	}
	db.Components = []wsd.DBComponent{{Alternatives: []wsd.DBAlternative{
		{Rels: map[int]*relation.Relation{0: mk(schemas[0], 1), 1: mk(schemas[1], 10)}},
		{Rels: map[int]*relation.Relation{1: mk(schemas[1], 20)}},
	}}}
	if db.Worlds().Int64() != 2 {
		t.Fatalf("worlds = %s, want 2", db.Worlds())
	}
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	want := worldset.New(names, schemas)
	w1r := relation.FromRows(schemas[0], relation.Tuple{value.Int(0)}, relation.Tuple{value.Int(1)})
	w1s := relation.FromRows(schemas[1], relation.Tuple{value.Int(10)})
	w2r := relation.FromRows(schemas[0], relation.Tuple{value.Int(0)})
	w2s := relation.FromRows(schemas[1], relation.Tuple{value.Int(20)})
	want.Add(worldset.World{w1r, w1s})
	want.Add(worldset.World{w2r, w2s})
	if !ws.Equal(want) {
		t.Fatalf("expansion:\n%s\nwant:\n%s", ws, want)
	}
}

// TestDecompDBEmptyComponent: a component with no alternatives
// represents the empty world-set.
func TestDecompDBEmptyComponent(t *testing.T) {
	db := wsd.NewDecompDB([]string{"R"}, []relation.Schema{relation.NewSchema("A")})
	db.Components = []wsd.DBComponent{{}}
	if db.Worlds().Sign() != 0 {
		t.Fatalf("worlds = %s, want 0", db.Worlds())
	}
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 0 {
		t.Fatalf("expansion has %d worlds, want 0", ws.Len())
	}
}
