package wsd

import (
	"math/big"
	"sort"

	"worldsetdb/internal/relation"
)

// This file holds the structural algebra the decomposition-native
// catalog (internal/store) runs on: copy-on-write edits of a DecompDB —
// adding, dropping, renaming and mapping relations — plus the
// normalization pass that keeps world counts exact after edits, the
// per-relation instance enumeration that answers "distinct instances
// across worlds" without expanding unrelated components, and the
// presence count that weights DML effects by worlds in O(#components).
// All operations are pure: they return new DecompDB values sharing
// every untouched relation with the receiver, so catalog snapshots stay
// immutable.

// clone returns a shallow structural copy: fresh slices (and fresh
// alternative maps) sharing every relation instance.
func (db *DecompDB) clone() *DecompDB {
	out := &DecompDB{
		Names:   append([]string{}, db.Names...),
		Schemas: append([]relation.Schema{}, db.Schemas...),
		Certain: append([]*relation.Relation{}, db.Certain...),
	}
	for _, c := range db.Components {
		comp := DBComponent{ID: c.ID, Alternatives: make([]DBAlternative, len(c.Alternatives))}
		for ai, a := range c.Alternatives {
			rels := make(map[int]*relation.Relation, len(a.Rels))
			for ri, r := range a.Rels {
				rels[ri] = r
			}
			comp.Alternatives[ai] = DBAlternative{Rels: rels}
		}
		out.Components = append(out.Components, comp)
	}
	return out
}

// WithCertain returns a decomposition identical to db except that
// relation i's certain tuples are replaced by r.
func (db *DecompDB) WithCertain(i int, r *relation.Relation) *DecompDB {
	out := db.clone()
	out.Certain[i] = r
	return out
}

// WithRelation returns the decomposition extended by a new relation
// holding the given certain tuples in every world (components are
// unchanged: the new relation is certain).
func (db *DecompDB) WithRelation(name string, schema relation.Schema, r *relation.Relation) *DecompDB {
	out := db.clone()
	out.Names = append(out.Names, name)
	out.Schemas = append(out.Schemas, schema)
	if r == nil {
		r = relation.New(schema)
	}
	out.Certain = append(out.Certain, r)
	return out
}

// RenameRelation returns the decomposition with relation i renamed.
func (db *DecompDB) RenameRelation(i int, name string) *DecompDB {
	out := db.clone()
	out.Names[i] = name
	return out
}

// DropRelation returns the decomposition without relation i: certain
// tuples and every alternative's contribution to i are removed, and
// the remaining contributions re-keyed. Callers should Normalize the
// result: alternatives that differed only in the dropped relation
// become duplicates, and collapsing them is what makes the represented
// world count match the world-set semantics of dropping a relation.
func (db *DecompDB) DropRelation(i int) *DecompDB {
	out := &DecompDB{
		Names:   append(append([]string{}, db.Names[:i]...), db.Names[i+1:]...),
		Schemas: append(append([]relation.Schema{}, db.Schemas[:i]...), db.Schemas[i+1:]...),
		Certain: append(append([]*relation.Relation{}, db.Certain[:i]...), db.Certain[i+1:]...),
	}
	for _, c := range db.Components {
		comp := DBComponent{ID: c.ID, Alternatives: make([]DBAlternative, len(c.Alternatives))}
		for ai, a := range c.Alternatives {
			rels := make(map[int]*relation.Relation, len(a.Rels))
			for ri, r := range a.Rels {
				switch {
				case ri < i:
					rels[ri] = r
				case ri > i:
					rels[ri-1] = r
				}
			}
			comp.Alternatives[ai] = DBAlternative{Rels: rels}
		}
		out.Components = append(out.Components, comp)
	}
	return out
}

// MapRelation applies fn to every piece of relation i — the certain
// tuples and each alternative's contribution — and returns the rebuilt
// decomposition. Because a world's instance of i is the union of its
// pieces, any per-tuple map or filter (selection, deletion, update with
// tuple-local predicates) distributes over the pieces, so the result
// represents exactly the world-set obtained by applying the operation
// in every world. fn must be pure and must not mutate its input.
func (db *DecompDB) MapRelation(i int, fn func(*relation.Relation) (*relation.Relation, error)) (*DecompDB, error) {
	out := db.clone()
	r, err := fn(out.Certain[i])
	if err != nil {
		return nil, err
	}
	out.Certain[i] = r
	for ci := range out.Components {
		for ai := range out.Components[ci].Alternatives {
			alt := out.Components[ci].Alternatives[ai]
			if p := alt.Rels[i]; p != nil {
				np, err := fn(p)
				if err != nil {
					return nil, err
				}
				if np.Len() == 0 {
					delete(alt.Rels, i)
				} else {
					alt.Rels[i] = np
				}
			}
		}
	}
	return out, nil
}

// Normalize returns an equivalent decomposition with redundant
// structure removed, in three passes per component:
//
//   - tuples of an alternative already certain in the same relation are
//     dropped (they are present everywhere regardless of the choice);
//   - alternatives with identical contributions across all relations
//     collapse to one (set semantics: they select identical worlds);
//   - components left with a single alternative fold that alternative's
//     contributions into the certain relations and disappear.
//
// Components with no alternatives (the empty world-set) are kept.
// After edits that can make worlds coincide within a component
// (dropping a relation, deleting tuples), Normalize restores the exact
// represented world count; duplicate worlds arising across distinct
// components are not detected (Worlds is an upper bound there, and
// expansion still deduplicates). The result shares unmodified relations
// with db.
func (db *DecompDB) Normalize() *DecompDB {
	out := &DecompDB{
		Names:   append([]string{}, db.Names...),
		Schemas: append([]relation.Schema{}, db.Schemas...),
		Certain: append([]*relation.Relation{}, db.Certain...),
	}
	certOwned := make([]bool, len(out.Certain)) // true once cloned for folding
	foldInto := func(ri int, r *relation.Relation) {
		if r == nil || r.Len() == 0 {
			return
		}
		if !certOwned[ri] {
			out.Certain[ri] = out.Certain[ri].Clone()
			certOwned[ri] = true
		}
		r.Each(func(t relation.Tuple) { out.Certain[ri].Insert(t) })
	}
	for _, c := range db.Components {
		if len(c.Alternatives) == 0 {
			out.Components = append(out.Components, DBComponent{ID: c.ID})
			continue
		}
		comp := DBComponent{ID: c.ID}
		seen := map[string]bool{}
		for _, a := range c.Alternatives {
			stripped := stripCertain(a, out.Certain)
			key := altContentKey(stripped)
			if seen[key] {
				continue
			}
			seen[key] = true
			comp.Alternatives = append(comp.Alternatives, stripped)
		}
		if len(comp.Alternatives) == 1 {
			for ri, r := range comp.Alternatives[0].Rels {
				foldInto(ri, r)
			}
			continue
		}
		out.Components = append(out.Components, comp)
	}
	// Pre-fill the planner statistics: one extra O(size) pass over
	// structure this function just built, so every normalized snapshot
	// answers Stats() without computing anything at read time.
	out.stats.Store(out.computeStats())
	return out
}

// stripCertain returns the alternative without tuples that are already
// certain, sharing untouched relations.
func stripCertain(a DBAlternative, certain []*relation.Relation) DBAlternative {
	rels := make(map[int]*relation.Relation, len(a.Rels))
	for ri, r := range a.Rels {
		if r == nil || r.Len() == 0 {
			continue
		}
		dirty := false
		r.Each(func(t relation.Tuple) {
			if certain[ri].Contains(t) {
				dirty = true
			}
		})
		if !dirty {
			rels[ri] = r
			continue
		}
		nr := relation.New(r.Schema())
		r.Each(func(t relation.Tuple) {
			if !certain[ri].Contains(t) {
				nr.Insert(t)
			}
		})
		if nr.Len() > 0 {
			rels[ri] = nr
		}
	}
	return DBAlternative{Rels: rels}
}

// Instances returns the distinct instances of relation i across the
// represented worlds, sorted deterministically by content — the
// factored counterpart of "the distinct answer relations across
// worlds". Only the components actually contributing tuples to i are
// enumerated; the product of their alternative counts is guarded by
// budget (0 means DefaultExpandBudget) with a *BudgetError beyond it,
// so a 2^40-world decomposition whose answer depends on two components
// lists its four instances without touching the other 38.
func (db *DecompDB) Instances(i, budget int) ([]*relation.Relation, error) {
	if budget == 0 {
		budget = DefaultExpandBudget
	}
	if db.Worlds().Sign() == 0 {
		return nil, nil
	}
	var deps []int
	combos := big.NewInt(1)
	for ci, c := range db.Components {
		contributes := false
		for _, a := range c.Alternatives {
			if r := a.Rels[i]; r != nil && r.Len() > 0 {
				contributes = true
				break
			}
		}
		if contributes {
			deps = append(deps, ci)
			combos.Mul(combos, big.NewInt(int64(len(c.Alternatives))))
		}
	}
	if !combos.IsInt64() || combos.Int64() > int64(budget) {
		return nil, &BudgetError{Worlds: combos, Budget: budget}
	}
	if len(deps) == 0 {
		return []*relation.Relation{db.Certain[i]}, nil
	}
	type keyed struct {
		key string
		r   *relation.Relation
	}
	seen := map[string]bool{}
	var insts []keyed
	choice := make([]int, len(deps))
	for {
		inst := db.Certain[i].Clone()
		for di, ci := range deps {
			if r := db.Components[ci].Alternatives[choice[di]].Rels[i]; r != nil {
				r.Each(func(t relation.Tuple) { inst.Insert(t) })
			}
		}
		if key := inst.ContentKey(); !seen[key] {
			seen[key] = true
			insts = append(insts, keyed{key, inst})
		}
		j := 0
		for ; j < len(deps); j++ {
			choice[j]++
			if choice[j] < len(db.Components[deps[j]].Alternatives) {
				break
			}
			choice[j] = 0
		}
		if j == len(deps) {
			break
		}
	}
	sort.Slice(insts, func(a, b int) bool { return insts[a].key < insts[b].key })
	out := make([]*relation.Relation, len(insts))
	for j, kv := range insts {
		out[j] = kv.r
	}
	return out, nil
}

// PresenceCount returns the number of represented worlds (counted as
// choice combinations) whose relation i contains t, in O(total
// alternatives): components are independent, so the count of
// combinations missing t is the product over components of the
// alternatives not contributing it. The count is exact whenever
// distinct choice combinations yield distinct worlds — true for
// normalized decompositions without cross-component overlap, and in
// particular for everything the repair/choice constructions build. DML
// statements use it to report world-weighted affected counts without
// enumerating worlds.
func (db *DecompDB) PresenceCount(i int, t relation.Tuple) *big.Int {
	worlds := db.Worlds()
	if worlds.Sign() == 0 {
		return big.NewInt(0)
	}
	if db.Certain[i].Contains(t) {
		return worlds
	}
	absent := big.NewInt(1)
	var m big.Int
	for _, c := range db.Components {
		miss := 0
		for _, a := range c.Alternatives {
			if r := a.Rels[i]; r == nil || !r.Contains(t) {
				miss++
			}
		}
		absent.Mul(absent, m.SetInt64(int64(miss)))
	}
	return worlds.Sub(worlds, absent)
}
