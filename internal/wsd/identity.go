package wsd

// Structural-sharing identity for the paged storage engine: the store's
// incremental checkpoints and WAL page-delta records need to know, per
// commit, which components actually changed. Comparing Alternatives
// slices by identity does not work — every copy-on-write edit (clone,
// MapRelation, Normalize) rebuilds the component and alternative
// containers even for untouched components — but the *relation.Relation
// values inside them ARE shared: an edit that leaves a component's
// content alone carries the same relation pointers through. So two
// components are "shape-same" when they have the same alternatives,
// each contributing the same relation objects to the same relation
// indices. Shape-sameness is sound for dirty detection: relations are
// immutable by convention, so shared pointers imply identical content
// (a rebuilt relation with equal content compares different — a false
// positive that only costs an unnecessary rewrite, never a missed one).

// SameComponentShape reports whether a and b contribute the same
// relation objects in the same alternative order. Empty contributions
// (nil or zero-length relations) are ignored on both sides —
// persistence skips them, so they cannot affect durable state.
func SameComponentShape(a, b DBComponent) bool {
	if len(a.Alternatives) != len(b.Alternatives) {
		return false
	}
	for i := range a.Alternatives {
		if !sameAlternativeShape(a.Alternatives[i], b.Alternatives[i]) {
			return false
		}
	}
	return true
}

func sameAlternativeShape(x, y DBAlternative) bool {
	nx := 0
	for ri, r := range x.Rels {
		if r == nil || r.Len() == 0 {
			continue
		}
		nx++
		if y.Rels[ri] != r {
			return false
		}
	}
	ny := 0
	for _, r := range y.Rels {
		if r != nil && r.Len() > 0 {
			ny++
		}
	}
	return nx == ny
}

// MaxComponentID returns the largest assigned component ID (0 when no
// component carries one). Recovery uses it to resume the catalog's ID
// counter past everything already persisted.
func (db *DecompDB) MaxComponentID() uint64 {
	var max uint64
	for i := range db.Components {
		if id := db.Components[i].ID; id > max {
			max = id
		}
	}
	return max
}

// ComponentByID returns the index of the component with the given
// stable ID, or -1. Linear scan — callers diffing whole snapshots
// should build their own map.
func (db *DecompDB) ComponentByID(id uint64) int {
	if id == 0 {
		return -1
	}
	for i := range db.Components {
		if db.Components[i].ID == id {
			return i
		}
	}
	return -1
}
