package wsd

import (
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

func identRel(vals ...int64) *relation.Relation {
	r := relation.New(relation.NewSchema("A"))
	for _, v := range vals {
		r.InsertValues(value.Int(v))
	}
	return r
}

func TestSameComponentShapeSharedPointers(t *testing.T) {
	r1, r2 := identRel(1), identRel(2)
	a := DBComponent{ID: 7, Alternatives: []DBAlternative{
		{Rels: map[int]*relation.Relation{0: r1}},
		{Rels: map[int]*relation.Relation{0: r2}},
	}}
	// A copy-on-write edit rebuilds the containers but shares the
	// relations — exactly what clone()/Normalize() do for untouched
	// components.
	b := DBComponent{ID: 7, Alternatives: []DBAlternative{
		{Rels: map[int]*relation.Relation{0: r1}},
		{Rels: map[int]*relation.Relation{0: r2}},
	}}
	if !SameComponentShape(a, b) {
		t.Fatal("rebuilt containers with shared relations reported as changed")
	}
}

func TestSameComponentShapeDetectsChange(t *testing.T) {
	r1, r2 := identRel(1), identRel(2)
	base := DBComponent{Alternatives: []DBAlternative{{Rels: map[int]*relation.Relation{0: r1}}}}

	// A fresh relation — even with identical content — is a change (the
	// conservative direction: rewrite, never skip).
	fresh := DBComponent{Alternatives: []DBAlternative{{Rels: map[int]*relation.Relation{0: identRel(1)}}}}
	if SameComponentShape(base, fresh) {
		t.Fatal("fresh relation pointer reported as unchanged")
	}

	// Different alternative count.
	grown := DBComponent{Alternatives: []DBAlternative{
		{Rels: map[int]*relation.Relation{0: r1}},
		{Rels: map[int]*relation.Relation{0: r2}},
	}}
	if SameComponentShape(base, grown) {
		t.Fatal("added alternative reported as unchanged")
	}

	// Contribution moved to a different relation index.
	moved := DBComponent{Alternatives: []DBAlternative{{Rels: map[int]*relation.Relation{1: r1}}}}
	if SameComponentShape(base, moved) {
		t.Fatal("moved contribution reported as unchanged")
	}
}

func TestSameComponentShapeIgnoresEmptyEntries(t *testing.T) {
	r1 := identRel(1)
	empty := relation.New(relation.NewSchema("A"))
	a := DBComponent{Alternatives: []DBAlternative{{Rels: map[int]*relation.Relation{0: r1}}}}
	b := DBComponent{Alternatives: []DBAlternative{{Rels: map[int]*relation.Relation{0: r1, 1: empty, 2: nil}}}}
	if !SameComponentShape(a, b) {
		t.Fatal("empty contributions must not affect shape identity")
	}
}

func TestMaxComponentID(t *testing.T) {
	db := NewDecompDB([]string{"R"}, []relation.Schema{relation.NewSchema("A")})
	if got := db.MaxComponentID(); got != 0 {
		t.Fatalf("empty db MaxComponentID = %d", got)
	}
	db.Components = []DBComponent{{ID: 3}, {ID: 9}, {ID: 0}}
	if got := db.MaxComponentID(); got != 9 {
		t.Fatalf("MaxComponentID = %d, want 9", got)
	}
	if got := db.ComponentByID(9); got != 1 {
		t.Fatalf("ComponentByID(9) = %d, want 1", got)
	}
	if got := db.ComponentByID(0); got != -1 {
		t.Fatalf("ComponentByID(0) = %d, want -1", got)
	}
}
