package wsd

import (
	"fmt"
	"math/big"
	"sort"

	"worldsetdb/internal/relation"
)

// This file implements bounded component merging: collapsing a chosen
// set of components of a DecompDB into a single component whose
// alternatives are the combinations of the members' alternatives. The
// merged decomposition represents exactly the same world-set, and the
// cost — the arity of the new component — is the product of just the
// merged components' alternative counts, independent of every other
// component. Query operators whose result couples the choices of
// several components (aggregation, cross-component products,
// intersections, differences) use it to resolve the entanglement
// locally instead of enumerating the whole world-set.

// mergeMaxAlternatives bounds the merged component a single
// MergeComponents call will materialize, whatever the caller's budget:
// beyond it the merge is no better than enumeration.
const mergeMaxAlternatives = 1 << 30

// MergeCost returns the alternative count of the component that
// MergeComponents(db, ids) would build: the product of the listed
// components' alternative counts. Duplicate ids count once. It is the
// enumeration cost of resolving an entanglement among exactly these
// components, and is what callers compare against their expansion
// budget before merging.
func MergeCost(db *DecompDB, ids []int) *big.Int {
	seen := map[int]bool{}
	cost := big.NewInt(1)
	var m big.Int
	for _, id := range ids {
		if seen[id] || id < 0 || id >= len(db.Components) {
			continue
		}
		seen[id] = true
		cost.Mul(cost, m.SetInt64(int64(len(db.Components[id].Alternatives))))
	}
	return cost
}

// MergeAlt returns the member alternative selected for the k-th merged
// component (in ascending id order) by the combined alternative m, for
// members with the given arities: the mixed-radix digit of m with index
// 0 fastest-varying — the same enumeration order Expand uses. It is
// exported so the factorized engine can mirror the layout of
// MergeComponents without materializing the merged component.
func MergeAlt(arities []int, k, m int) int {
	stride := 1
	for i := 0; i < k; i++ {
		stride *= arities[i]
	}
	return (m / stride) % arities[k]
}

// MergeComponents returns a decomposition representing the same
// world-set as db in which the listed components are collapsed into a
// single component placed at the position of the smallest id. The new
// component's alternatives enumerate the members' choice combinations
// in mixed-radix order (smallest id fastest-varying, like Expand); each
// combined alternative contributes, per relation, the union of the
// member alternatives' contributions. The result has
// MergeCost(db, ids) alternatives in the merged component.
//
// Alternatives are kept positional and are not deduplicated, so
// Worlds() of the result may be an upper bound when member alternatives
// overlap in content — the same caveat as Normalize documents for
// cross-component duplicates; Expand still deduplicates. Callers that
// want a minimal component can Normalize the result.
func MergeComponents(db *DecompDB, ids []int) (*DecompDB, error) {
	sorted := append([]int{}, ids...)
	sort.Ints(sorted)
	uniq := sorted[:0]
	for i, id := range sorted {
		if id < 0 || id >= len(db.Components) {
			return nil, fmt.Errorf("wsd: merge of component %d out of range [0,%d)", id, len(db.Components))
		}
		if i == 0 || id != sorted[i-1] {
			uniq = append(uniq, id)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("wsd: merge of no components")
	}
	out := db.clone()
	if len(uniq) == 1 {
		return out, nil
	}

	if c := MergeCost(db, uniq); !c.IsInt64() || c.Int64() > mergeMaxAlternatives {
		return nil, fmt.Errorf("wsd: merge of components %v would materialize %s alternatives (max %d)", uniq, c, mergeMaxAlternatives)
	}
	arities := make([]int, len(uniq))
	cost := 1
	for k, id := range uniq {
		arities[k] = len(db.Components[id].Alternatives)
		cost *= arities[k]
	}
	merged := DBComponent{Alternatives: make([]DBAlternative, cost)}
	for m := 0; m < cost; m++ {
		alt := DBAlternative{Rels: map[int]*relation.Relation{}}
		for k, id := range uniq {
			member := db.Components[id].Alternatives[MergeAlt(arities, k, m)]
			for ri, r := range member.Rels {
				if r == nil || r.Len() == 0 {
					continue
				}
				if cur := alt.Rels[ri]; cur == nil {
					alt.Rels[ri] = r
				} else {
					u := cur.Clone()
					r.Each(func(t relation.Tuple) { u.Insert(t) })
					alt.Rels[ri] = u
				}
			}
		}
		merged.Alternatives[m] = alt
	}

	// Splice: the merged component replaces the smallest member id; the
	// other members disappear.
	drop := map[int]bool{}
	for _, id := range uniq[1:] {
		drop[id] = true
	}
	comps := out.Components[:0]
	for ci, c := range out.Components {
		switch {
		case ci == uniq[0]:
			comps = append(comps, merged)
		case drop[ci]:
		default:
			comps = append(comps, c)
		}
	}
	out.Components = comps
	return out, nil
}
