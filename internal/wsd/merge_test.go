package wsd_test

import (
	"math/rand"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsd"
)

// TestMergeComponentsRoundTrip checks, on randomized decompositions,
// that merging a chosen component subset preserves the represented
// world-set byte-for-byte: the merged decomposition expands to a
// rendering identical to the original's, the merged component's arity
// equals MergeCost, and re-factorizing the merged expansion round-trips
// byte-identically as well.
func TestMergeComponentsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	trials := 0
	for i := 0; i < 300; i++ {
		db := datagen.RandomDecompDB(rng, names, schemas, 3, 3, 4, 3, 2)
		if len(db.Components) < 2 {
			continue
		}
		trials++
		var ids []int
		for ci := range db.Components {
			if rng.Intn(2) == 0 {
				ids = append(ids, ci)
			}
		}
		if len(ids) < 2 {
			ids = []int{0, len(db.Components) - 1}
		}
		merged, err := wsd.MergeComponents(db, ids)
		if err != nil {
			t.Fatal(err)
		}
		if want, got := len(db.Components)-len(dedup(ids))+1, len(merged.Components); got != want {
			t.Fatalf("merge of %v: %d components, want %d", ids, got, want)
		}
		// The merged component sits at the position of the smallest id
		// (only larger ids are spliced out), with MergeCost alternatives.
		pos := ids[0]
		for _, id := range ids[1:] {
			if id < pos {
				pos = id
			}
		}
		cost := wsd.MergeCost(db, ids)
		if got := int64(len(merged.Components[pos].Alternatives)); got != cost.Int64() {
			t.Fatalf("merge of %v: %d alternatives at position %d, want MergeCost %s", ids, got, pos, cost)
		}
		want, err := db.Expand(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		got, err := merged.Expand(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("merge of %v changed the represented world-set\ngot:\n%s\nwant:\n%s", ids, got, want)
		}
		re, err := wsd.Refactor(got)
		if err != nil {
			t.Fatal(err)
		}
		back, err := re.Expand(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != want.String() {
			t.Fatalf("Refactor round-trip of merge %v diverged\ngot:\n%s\nwant:\n%s", ids, back, want)
		}
	}
	if trials < 50 {
		t.Fatalf("too few multi-component inputs exercised: %d", trials)
	}
}

func dedup(ids []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// TestMergeComponentsErrors covers the argument validation.
func TestMergeComponentsErrors(t *testing.T) {
	names := []string{"R"}
	schemas := []relation.Schema{relation.NewSchema("A")}
	db := wsd.NewDecompDB(names, schemas)
	if _, err := wsd.MergeComponents(db, nil); err == nil {
		t.Fatal("merge of no components must fail")
	}
	if _, err := wsd.MergeComponents(db, []int{0}); err == nil {
		t.Fatal("merge of an out-of-range component must fail")
	}
}

// TestMergeAltEnumeratesAllCombinations: the mixed-radix layout is a
// bijection between combined alternatives and member choices, matching
// Expand's enumeration order (index 0 fastest-varying).
func TestMergeAltEnumeratesAllCombinations(t *testing.T) {
	arities := []int{2, 3, 2}
	seen := map[[3]int]bool{}
	for m := 0; m < 12; m++ {
		var combo [3]int
		for k := range arities {
			combo[k] = wsd.MergeAlt(arities, k, m)
		}
		if seen[combo] {
			t.Fatalf("combined alternative %d repeats combination %v", m, combo)
		}
		seen[combo] = true
	}
	if len(seen) != 12 {
		t.Fatalf("enumerated %d combinations, want 12", len(seen))
	}
	if wsd.MergeAlt(arities, 0, 1) != 1 || wsd.MergeAlt(arities, 1, 2) != 1 || wsd.MergeAlt(arities, 2, 6) != 1 {
		t.Fatal("MergeAlt does not use the index-0-fastest mixed-radix order")
	}
}
