package wsd

import (
	"sort"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
)

// refactorMaxClasses bounds the number of distinct membership-signature
// classes the block-finding pass of Refactor considers. Beyond it (or
// beyond refactorMaxWork signature comparisons) the world-set is kept as
// a single component, which is always correct — the bound only gives up
// succinctness, never exactness.
const (
	refactorMaxClasses = 256
	refactorMaxWork    = 1 << 26
)

// Refactor factorizes an explicit multi-relation world-set back into a
// world-set decomposition: the "incomplete back to decomposed"
// direction that keeps multi-statement pipelines polynomial in the
// decomposition size after an entangled step has forced enumeration.
// It generalizes the single-relation Decompose to whole databases.
//
// Tuples present in every world become certain; the remaining
// (relation, tuple) occurrences are partitioned into blocks of
// pairwise-dependent items (items whose world memberships do not
// combine freely), and each block becomes an independent component
// whose alternatives are the distinct per-world restrictions of the
// block — spanning several relations when the block does. The
// factorization is verified (the alternative counts must multiply out
// to the world count); when verification fails, or the instance is too
// wild for block-finding to be worthwhile, the world-set is kept as a
// single component, which is always correct.
//
// The construction is deterministic: Refactor of equal world-sets
// yields structurally identical decompositions, and Expand of the
// result renders byte-identically to the input world-set.
//
// The empty world-set refactors to a decomposition with one
// zero-alternative component (rep = ∅).
func Refactor(ws *worldset.WorldSet) (*DecompDB, error) {
	db := NewDecompDB(ws.Names(), ws.Schemas())
	worlds := ws.Worlds()
	if len(worlds) == 0 {
		db.Components = []DBComponent{{}}
		return db, nil
	}

	// Certain tuples per relation: the intersection across worlds.
	k := ws.NumRelations()
	for i := 0; i < k; i++ {
		certain := worlds[0][i].Clone()
		for _, w := range worlds[1:] {
			next := relation.New(ws.Schemas()[i])
			certain.Each(func(t relation.Tuple) {
				if w[i].Contains(t) {
					next.Insert(t)
				}
			})
			certain = next
		}
		db.Certain[i] = certain
	}
	if len(worlds) == 1 {
		return db, nil
	}

	// The uncertain universe: (relation, tuple) items in some world but
	// not all, in deterministic order.
	type item struct {
		ri int
		t  relation.Tuple
	}
	var items []item
	for i := 0; i < k; i++ {
		universe := relation.New(ws.Schemas()[i])
		for _, w := range worlds {
			w[i].Each(func(t relation.Tuple) {
				if !db.Certain[i].Contains(t) {
					universe.Insert(t)
				}
			})
		}
		for _, t := range universe.Tuples() {
			items = append(items, item{ri: i, t: t})
		}
	}

	// Membership signatures, interned into classes: items with equal
	// signatures are trivially dependent and always share a block.
	sigOf := func(it item) string {
		b := make([]byte, len(worlds))
		for wi, w := range worlds {
			if w[it.ri].Contains(it.t) {
				b[wi] = 1
			}
		}
		return string(b)
	}
	classIdx := map[string]int{}
	var classSigs []string
	itemClass := make([]int, len(items))
	for ii, it := range items {
		sig := sigOf(it)
		ci, ok := classIdx[sig]
		if !ok {
			ci = len(classSigs)
			classIdx[sig] = ci
			classSigs = append(classSigs, sig)
		}
		itemClass[ii] = ci
	}

	singleComponent := func() *DecompDB {
		comp := DBComponent{}
		for _, w := range worlds {
			alt := DBAlternative{Rels: map[int]*relation.Relation{}}
			for _, it := range items {
				if w[it.ri].Contains(it.t) {
					r := alt.Rels[it.ri]
					if r == nil {
						r = relation.New(ws.Schemas()[it.ri])
						alt.Rels[it.ri] = r
					}
					r.Insert(it.t)
				}
			}
			comp.Alternatives = append(comp.Alternatives, alt)
		}
		db.Components = []DBComponent{comp}
		return db
	}

	d := len(classSigs)
	if d == 0 {
		// All worlds share the uncertain part — but distinct worlds must
		// differ somewhere, so d == 0 only when there are no uncertain
		// items, which contradicts len(worlds) > 1. Defensive: certain-only.
		return db, nil
	}
	if d > refactorMaxClasses || d*d*len(worlds) > refactorMaxWork {
		return singleComponent(), nil
	}

	// Union-find over signature classes: classes whose signatures do not
	// combine freely must share a component.
	parent := make([]int, d)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if !sigsIndependent(classSigs[i], classSigs[j]) {
				parent[find(i)] = find(j)
			}
		}
	}
	blocks := map[int][]int{} // root class → member classes
	for ci := 0; ci < d; ci++ {
		blocks[find(ci)] = append(blocks[find(ci)], ci)
	}
	roots := make([]int, 0, len(blocks))
	for r := range blocks {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	// One component per block: alternatives are the distinct world
	// restrictions of the block's items, across all relations.
	blockItems := make(map[int][]int, len(blocks)) // root → item indexes
	for ii := range items {
		r := find(itemClass[ii])
		blockItems[r] = append(blockItems[r], ii)
	}
	total := 1
	overflow := false
	for _, root := range roots {
		comp := DBComponent{}
		seen := map[string]bool{}
		for wi := range worlds {
			alt := DBAlternative{Rels: map[int]*relation.Relation{}}
			for _, ii := range blockItems[root] {
				it := items[ii]
				if classSigs[itemClass[ii]][wi] == 1 {
					r := alt.Rels[it.ri]
					if r == nil {
						r = relation.New(ws.Schemas()[it.ri])
						alt.Rels[it.ri] = r
					}
					r.Insert(it.t)
				}
			}
			key := altContentKey(alt)
			if !seen[key] {
				seen[key] = true
				comp.Alternatives = append(comp.Alternatives, alt)
			}
		}
		db.Components = append(db.Components, comp)
		if total > len(worlds)/len(comp.Alternatives)+1 {
			overflow = true
		}
		total *= len(comp.Alternatives)
	}

	// Verify: the product of alternative counts must equal the world
	// count, otherwise the blocks are jointly dependent even though
	// pairwise independent — fall back to one component.
	if overflow || total != len(worlds) {
		return singleComponent(), nil
	}
	return db, nil
}

// sigsIndependent reports whether two membership signatures (byte
// strings of 0/1 per world) combine freely: the observed presence
// patterns equal the product of the marginals.
func sigsIndependent(a, b string) bool {
	var marginalA, marginalB [2]bool
	var joint [2][2]bool
	for i := 0; i < len(a); i++ {
		ai, bi := a[i], b[i]
		marginalA[ai] = true
		marginalB[bi] = true
		joint[ai][bi] = true
	}
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			if marginalA[x] && marginalB[y] && !joint[x][y] {
				return false
			}
		}
	}
	return true
}

// altContentKey returns an injective encoding of an alternative's
// contributions across relations, for deduplication.
func altContentKey(a DBAlternative) string {
	idx := make([]int, 0, len(a.Rels))
	for ri, r := range a.Rels {
		if r != nil && r.Len() > 0 {
			idx = append(idx, ri)
		}
	}
	sort.Ints(idx)
	var b []byte
	for _, ri := range idx {
		b = append(b, byte(ri>>24), byte(ri>>16), byte(ri>>8), byte(ri), 0x1c)
		b = append(b, a.Rels[ri].ContentKey()...)
		b = append(b, 0x1c)
	}
	return string(b)
}
