package wsd

import (
	"errors"
	"math/rand"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
)

func intTuple(vs ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vs))
	for i, v := range vs {
		t[i] = value.Int(v)
	}
	return t
}

// refactorRoundTrip asserts the defining property of Refactor: expanding
// the decomposition renders byte-identically to the input world-set.
func refactorRoundTrip(t *testing.T, ws *worldset.WorldSet) *DecompDB {
	t.Helper()
	db, err := Refactor(ws)
	if err != nil {
		t.Fatalf("Refactor: %v", err)
	}
	got, err := db.Expand(0)
	if err != nil {
		t.Fatalf("expanding the refactored decomposition: %v", err)
	}
	if g, w := got.String(), ws.String(); g != w {
		t.Fatalf("round trip differs\n--- refactored+expanded ---\n%s\n--- input ---\n%s\ndecomposition:\n%s", g, w, db)
	}
	return db
}

// TestRefactorFactorsProducts pins the succinctness property: a
// world-set that is a product of independent choices refactors into one
// component per choice, not one alternative per world.
func TestRefactorFactorsProducts(t *testing.T) {
	// Two independent binary choices over two relations: R picks tuple
	// (1) or (2), S independently picks (10) or (20) → 4 worlds.
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A"), relation.NewSchema("B")}
	ws := worldset.New(names, schemas)
	for _, a := range []int64{1, 2} {
		for _, b := range []int64{10, 20} {
			ws.Add(worldset.World{
				relation.FromRows(schemas[0], intTuple(a), intTuple(99)),
				relation.FromRows(schemas[1], intTuple(b)),
			})
		}
	}
	db := refactorRoundTrip(t, ws)
	if len(db.Components) != 2 {
		t.Fatalf("product of two independent choices should factor into 2 components, got %d\n%s", len(db.Components), db)
	}
	for _, c := range db.Components {
		if len(c.Alternatives) != 2 {
			t.Fatalf("each component should have 2 alternatives\n%s", db)
		}
	}
	if !db.Certain[0].Contains(intTuple(99)) {
		t.Fatalf("the shared tuple (99) must be certain\n%s", db)
	}
	if db.Worlds().Int64() != 4 {
		t.Fatalf("worlds = %s, want 4", db.Worlds())
	}
}

// TestRefactorCrossRelationComponent checks that a dependency spanning
// relations lands in a single multi-relation component.
func TestRefactorCrossRelationComponent(t *testing.T) {
	// R's tuple and S's tuple appear together or not at all: one
	// component contributing to both relations.
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A"), relation.NewSchema("B")}
	ws := worldset.New(names, schemas)
	ws.Add(worldset.World{
		relation.FromRows(schemas[0], intTuple(1)),
		relation.FromRows(schemas[1], intTuple(10)),
	})
	ws.Add(worldset.World{
		relation.New(schemas[0]),
		relation.New(schemas[1]),
	})
	db := refactorRoundTrip(t, ws)
	if len(db.Components) != 1 {
		t.Fatalf("want 1 component spanning both relations, got %d\n%s", len(db.Components), db)
	}
	spans := map[int]bool{}
	for _, a := range db.Components[0].Alternatives {
		for ri, r := range a.Rels {
			if r.Len() > 0 {
				spans[ri] = true
			}
		}
	}
	if !spans[0] || !spans[1] {
		t.Fatalf("component should contribute to both relations\n%s", db)
	}
}

// TestRefactorJointlyDependentFallsBack: three worlds cannot factor
// (3 is prime and no block structure fits), so Refactor must keep a
// single verified component — and still round-trip exactly.
func TestRefactorJointlyDependentFallsBack(t *testing.T) {
	names := []string{"R"}
	schemas := []relation.Schema{relation.NewSchema("A")}
	ws := worldset.New(names, schemas)
	ws.Add(worldset.World{relation.FromRows(schemas[0], intTuple(1))})
	ws.Add(worldset.World{relation.FromRows(schemas[0], intTuple(2))})
	ws.Add(worldset.World{relation.FromRows(schemas[0], intTuple(1), intTuple(2))})
	db := refactorRoundTrip(t, ws)
	if len(db.Components) != 1 || len(db.Components[0].Alternatives) != 3 {
		t.Fatalf("want the single-component fallback with 3 alternatives\n%s", db)
	}
}

// TestRefactorEdgeCases: empty world-set, singleton, single world with
// empty relations.
func TestRefactorEdgeCases(t *testing.T) {
	names := []string{"R"}
	schemas := []relation.Schema{relation.NewSchema("A")}

	empty := worldset.New(names, schemas)
	db, err := Refactor(empty)
	if err != nil {
		t.Fatal(err)
	}
	if db.Worlds().Sign() != 0 {
		t.Fatalf("empty world-set must refactor to 0 worlds, got %s", db.Worlds())
	}
	refactorRoundTrip(t, empty)

	single := worldset.New(names, schemas)
	single.Add(worldset.World{relation.FromRows(schemas[0], intTuple(7))})
	db = refactorRoundTrip(t, single)
	if len(db.Components) != 0 || db.Certain[0].Len() != 1 {
		t.Fatalf("singleton world-set must be all-certain\n%s", db)
	}
}

// TestRefactorRandomizedRoundTrip sweeps randomized world-sets —
// including expansions of randomized decompositions, which have real
// product structure — through the byte-identity round trip.
func TestRefactorRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20070714))
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	for i := 0; i < 60; i++ {
		ws := randomWorldSet(rng, names, schemas, 3, 3, 4)
		refactorRoundTrip(t, ws)
	}
	for i := 0; i < 60; i++ {
		db := randomDecompDB(rng, names, schemas)
		ws, err := db.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		re := refactorRoundTrip(t, ws)
		// The refactorization must be at least as succinct as the
		// (normalized) generator output: no more worlds than stored size
		// blowup. Weak sanity bound: size within the expanded total.
		if re.Size() > ws.Len()*16 {
			t.Fatalf("refactored size %d looks unfactored for %d worlds", re.Size(), ws.Len())
		}
	}
}

// randomWorldSet is a local copy of datagen.RandomWorldSet (datagen
// imports wsd, so wsd tests cannot import datagen).
func randomWorldSet(rng *rand.Rand, names []string, schemas []relation.Schema, domain, maxTuples, maxWorlds int) *worldset.WorldSet {
	ws := worldset.New(names, schemas)
	n := 1 + rng.Intn(maxWorlds)
	for i := 0; i < n; i++ {
		w := make(worldset.World, len(schemas))
		for j, s := range schemas {
			r := relation.New(s)
			for k := rng.Intn(maxTuples + 1); k > 0; k-- {
				tup := make(relation.Tuple, len(s))
				for c := range tup {
					tup[c] = value.Int(int64(rng.Intn(domain)))
				}
				r.Insert(tup)
			}
			w[j] = r
		}
		ws.Add(w)
	}
	return ws
}

func randomDecompDB(rng *rand.Rand, names []string, schemas []relation.Schema) *DecompDB {
	db := NewDecompDB(names, schemas)
	for i, s := range schemas {
		r := relation.New(s)
		for k := rng.Intn(3); k > 0; k-- {
			r.Insert(intTuple(int64(rng.Intn(3)), int64(rng.Intn(3)))[:len(s)])
		}
		db.Certain[i] = r
	}
	for c := rng.Intn(3); c > 0; c-- {
		comp := DBComponent{}
		for a := 1 + rng.Intn(3); a > 0; a-- {
			alt := DBAlternative{Rels: map[int]*relation.Relation{}}
			for i, s := range schemas {
				if rng.Intn(2) == 0 {
					continue
				}
				r := relation.New(s)
				for k := rng.Intn(2) + 1; k > 0; k-- {
					tup := make(relation.Tuple, len(s))
					for ci := range tup {
						tup[ci] = value.Int(int64(rng.Intn(3)))
					}
					r.Insert(tup)
				}
				alt.Rels[i] = r
			}
			comp.Alternatives = append(comp.Alternatives, alt)
		}
		db.Components = append(db.Components, comp)
	}
	return db
}

// TestNormalizeCollapses: certain-shadowed alternative tuples are
// stripped, duplicate alternatives merge, and single-alternative
// components fold into certain — with the represented world-set
// unchanged.
func TestNormalizeCollapses(t *testing.T) {
	names := []string{"R"}
	schemas := []relation.Schema{relation.NewSchema("A")}
	db := NewDecompDB(names, schemas)
	db.Certain[0] = relation.FromRows(schemas[0], intTuple(1))
	// Component whose alternatives differ only by a certain tuple →
	// collapses entirely and folds its shared tuple into certain.
	db.Components = append(db.Components, DBComponent{Alternatives: []DBAlternative{
		{Rels: map[int]*relation.Relation{0: relation.FromRows(schemas[0], intTuple(1), intTuple(2))}},
		{Rels: map[int]*relation.Relation{0: relation.FromRows(schemas[0], intTuple(2))}},
	}})
	// A genuine choice stays.
	db.Components = append(db.Components, DBComponent{Alternatives: []DBAlternative{
		{Rels: map[int]*relation.Relation{0: relation.FromRows(schemas[0], intTuple(3))}},
		{Rels: map[int]*relation.Relation{0: relation.FromRows(schemas[0], intTuple(4))}},
	}})
	before, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	norm := db.Normalize()
	after, err := norm.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if after.String() != before.String() {
		t.Fatalf("Normalize changed the represented world-set\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if len(norm.Components) != 1 {
		t.Fatalf("want 1 surviving component, got %d\n%s", len(norm.Components), norm)
	}
	if got := norm.Worlds().Int64(); got != 2 {
		t.Fatalf("normalized world count = %d, want 2", got)
	}
	if !norm.Certain[0].Contains(intTuple(2)) {
		t.Fatalf("folded tuple (2) must be certain\n%s", norm)
	}
}

// TestInstancesEnumeratesOnlyDependencies: with 30 components but an
// answer relation depending on one, Instances lists the two variants
// without a budget error, while Expand of the whole decomposition would
// refuse.
func TestInstancesEnumeratesOnlyDependencies(t *testing.T) {
	names := []string{"R", "Ans"}
	schemas := []relation.Schema{relation.NewSchema("A"), relation.NewSchema("B")}
	db := NewDecompDB(names, schemas)
	for i := 0; i < 30; i++ {
		comp := DBComponent{}
		for a := 0; a < 2; a++ {
			alt := DBAlternative{Rels: map[int]*relation.Relation{
				0: relation.FromRows(schemas[0], intTuple(int64(10*i+a))),
			}}
			if i == 7 { // only component 7 touches Ans
				alt.Rels[1] = relation.FromRows(schemas[1], intTuple(int64(a)))
			}
			comp.Alternatives = append(comp.Alternatives, alt)
		}
		db.Components = append(db.Components, comp)
	}
	if _, err := db.Expand(1 << 20); err == nil {
		t.Fatal("2^30 worlds should not expand within the default budget")
	}
	insts, err := db.Instances(1, 1<<20)
	if err != nil {
		t.Fatalf("Instances should not need to expand: %v", err)
	}
	if len(insts) != 2 {
		t.Fatalf("want 2 distinct Ans instances, got %d", len(insts))
	}
	// But a relation depending on all 30 components is refused with the
	// shared budget-error shape.
	_, err = db.Instances(0, 1<<20)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError for the entangled relation, got %v", err)
	}
}

// TestPresenceCount checks the component-independence counting.
func TestPresenceCount(t *testing.T) {
	names := []string{"R"}
	schemas := []relation.Schema{relation.NewSchema("A")}
	db := NewDecompDB(names, schemas)
	db.Certain[0] = relation.FromRows(schemas[0], intTuple(99))
	db.Components = []DBComponent{
		{Alternatives: []DBAlternative{
			{Rels: map[int]*relation.Relation{0: relation.FromRows(schemas[0], intTuple(1))}},
			{Rels: map[int]*relation.Relation{0: relation.FromRows(schemas[0], intTuple(2))}},
			{Rels: map[int]*relation.Relation{}},
		}},
		{Alternatives: []DBAlternative{
			{Rels: map[int]*relation.Relation{0: relation.FromRows(schemas[0], intTuple(3))}},
			{Rels: map[int]*relation.Relation{}},
		}},
	}
	// 6 distinct worlds; tuple (99) certain → 6; (1) and (2) each in one
	// of three comp-1 alternatives → 2; (3) in one of two comp-2
	// alternatives → 3.
	if got := db.PresenceCount(0, intTuple(99)).Int64(); got != 6 {
		t.Fatalf("certain tuple presence = %d, want 6", got)
	}
	if got := db.PresenceCount(0, intTuple(2)).Int64(); got != 2 {
		t.Fatalf("presence of (2) = %d, want 2", got)
	}
	if got := db.PresenceCount(0, intTuple(3)).Int64(); got != 3 {
		t.Fatalf("presence of (3) = %d, want 3", got)
	}
	// Brute-force cross-check against the enumeration.
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range []relation.Tuple{intTuple(1), intTuple(2), intTuple(99), intTuple(42)} {
		want := 0
		for _, w := range ws.Worlds() {
			if w[0].Contains(tup) {
				want++
			}
		}
		if got := db.PresenceCount(0, tup).Int64(); got != int64(want) {
			t.Fatalf("presence of %v = %d, enumeration says %d", tup, got, want)
		}
	}
}

// TestDropRelationNormalizeCollapsesWorlds: dropping the only relation
// that distinguished the alternatives must collapse the world count,
// matching the world-set semantics of dropping a relation.
func TestDropRelationNormalizeCollapsesWorlds(t *testing.T) {
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A"), relation.NewSchema("B")}
	db := NewDecompDB(names, schemas)
	db.Components = []DBComponent{{Alternatives: []DBAlternative{
		{Rels: map[int]*relation.Relation{
			0: relation.FromRows(schemas[0], intTuple(1)),
			1: relation.FromRows(schemas[1], intTuple(5)),
		}},
		{Rels: map[int]*relation.Relation{
			0: relation.FromRows(schemas[0], intTuple(1)),
			1: relation.FromRows(schemas[1], intTuple(6)),
		}},
	}}}
	dropped := db.DropRelation(1).Normalize()
	if got := dropped.Worlds().Int64(); got != 1 {
		t.Fatalf("worlds after dropping the distinguishing relation = %d, want 1\n%s", got, dropped)
	}
	if !dropped.Certain[0].Contains(intTuple(1)) {
		t.Fatalf("surviving tuple must fold into certain\n%s", dropped)
	}
}
