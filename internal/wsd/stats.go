package wsd

import "math"

// This file holds the decomposition statistics the cost-based planner
// runs on: per-relation certain/alternative cardinalities, component
// counts, and an alternatives-per-component histogram. They are a cheap
// by-product of Normalize — one O(size) pass over structure Normalize
// already walked — and are cached on the DecompDB so snapshots carry
// them for free: the rewrite search's cardinality estimator, wsdexec's
// join ordering and merge-vs-fallback decision, the plan cache's drift
// check, and the /metrics per-relation gauges all read the same Stats
// value without recomputing anything per use.

// RelStats are the decomposition statistics of one relation.
type RelStats struct {
	// Certain is the number of tuples present in every world.
	Certain int
	// Alternative is the total number of tuples contributed to the
	// relation across all alternatives of all components — the upper
	// bound on uncertain tuples any single world can hold is smaller,
	// but this total is what bounds the engine's per-piece work.
	Alternative int
	// Components is the number of components contributing at least one
	// tuple to the relation: the relation's uncertainty spread, and the
	// factor count of any merge that entangles it.
	Components int
}

// Stats are the decomposition statistics of a whole DecompDB.
type Stats struct {
	// Rels is indexed like DecompDB.Names.
	Rels []RelStats
	// Components is the total component count.
	Components int
	// AltHist maps alternatives-per-component to the number of
	// components with that arity.
	AltHist map[int]int
}

// WorldsLog2 returns log2 of the represented world count — the sum of
// log2(arity) over components — as a float, usable in cost arithmetic
// where the exact big.Int count would overflow.
func (s *Stats) WorldsLog2() float64 {
	l := 0.0
	for arity, n := range s.AltHist {
		if arity > 0 {
			l += float64(n) * math.Log2(float64(arity))
		}
	}
	return l
}

// Rel returns the stats of relation i, zero-valued out of range.
func (s *Stats) Rel(i int) RelStats {
	if s == nil || i < 0 || i >= len(s.Rels) {
		return RelStats{}
	}
	return s.Rels[i]
}

// Stats returns the decomposition statistics, computing and caching
// them on first use. Normalize pre-fills the cache, so snapshots of the
// catalog (whose commit paths always normalize) answer from the cached
// value; decompositions built directly (FromComplete seeds, test
// fixtures) compute lazily. Safe for concurrent readers: the cache is
// an atomic pointer and the computation is pure.
func (db *DecompDB) Stats() *Stats {
	if s := db.stats.Load(); s != nil {
		return s
	}
	s := db.computeStats()
	db.stats.Store(s)
	return s
}

// computeStats walks the decomposition once: certain cardinalities off
// the certain relations, alternative cardinalities and per-relation
// component spread off every alternative's contributions.
func (db *DecompDB) computeStats() *Stats {
	s := &Stats{
		Rels:       make([]RelStats, len(db.Names)),
		Components: len(db.Components),
		AltHist:    make(map[int]int),
	}
	for i, r := range db.Certain {
		s.Rels[i].Certain = r.Len()
	}
	touched := make([]bool, len(db.Names))
	for _, c := range db.Components {
		s.AltHist[len(c.Alternatives)]++
		for i := range touched {
			touched[i] = false
		}
		for _, a := range c.Alternatives {
			for ri, r := range a.Rels {
				if r == nil || r.Len() == 0 {
					continue
				}
				s.Rels[ri].Alternative += r.Len()
				touched[ri] = true
			}
		}
		for ri, t := range touched {
			if t {
				s.Rels[ri].Components++
			}
		}
	}
	return s
}
