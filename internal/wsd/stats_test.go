package wsd

import (
	"math"
	"testing"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
)

// statsComp builds a component whose n alternatives each contribute the
// given number of single-column tuples to relation ri (distinct values
// per alternative, so Normalize collapses nothing).
func statsComp(schemas []relation.Schema, ri, n, tuples int) DBComponent {
	c := DBComponent{}
	for a := 0; a < n; a++ {
		r := relation.New(schemas[ri])
		for t := 0; t < tuples; t++ {
			r.Insert(relation.Tuple{value.Int(int64(100*a + t))})
		}
		c.Alternatives = append(c.Alternatives, DBAlternative{Rels: map[int]*relation.Relation{ri: r}})
	}
	return c
}

// TestStatsKnownDecomposition pins the statistics computed for a
// hand-built decomposition: certain cardinalities off the certain
// relations, alternative cardinalities summed across every alternative,
// per-relation component spread, and the arity histogram.
func TestStatsKnownDecomposition(t *testing.T) {
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A"), relation.NewSchema("B")}
	db := NewDecompDB(names, schemas)
	db.Certain[0].Insert(relation.Tuple{value.Int(1)})
	db.Certain[0].Insert(relation.Tuple{value.Int(2)})
	// One 3-alternative component on R (1 tuple per alternative), one
	// 2-alternative component on S (2 tuples then 1 tuple).
	db.Components = append(db.Components, statsComp(schemas, 0, 3, 1))
	c2 := DBComponent{}
	for a, n := range []int{2, 1} {
		r := relation.New(schemas[1])
		for tpl := 0; tpl < n; tpl++ {
			r.Insert(relation.Tuple{value.Int(int64(10*a + tpl))})
		}
		c2.Alternatives = append(c2.Alternatives, DBAlternative{Rels: map[int]*relation.Relation{1: r}})
	}
	db.Components = append(db.Components, c2)

	st := db.Stats()
	if got, want := st.Rel(0), (RelStats{Certain: 2, Alternative: 3, Components: 1}); got != want {
		t.Errorf("R stats = %+v, want %+v", got, want)
	}
	if got, want := st.Rel(1), (RelStats{Certain: 0, Alternative: 3, Components: 1}); got != want {
		t.Errorf("S stats = %+v, want %+v", got, want)
	}
	if st.Components != 2 {
		t.Errorf("Components = %d, want 2", st.Components)
	}
	if st.AltHist[3] != 1 || st.AltHist[2] != 1 || len(st.AltHist) != 2 {
		t.Errorf("AltHist = %v, want {2:1, 3:1}", st.AltHist)
	}
	if got, want := st.WorldsLog2(), math.Log2(3)+1; math.Abs(got-want) > 1e-9 {
		t.Errorf("WorldsLog2 = %v, want %v", got, want)
	}
	// Out-of-range and nil receivers are zero-valued, not panics.
	if st.Rel(7) != (RelStats{}) {
		t.Errorf("Rel(7) = %+v, want zero", st.Rel(7))
	}
	var nilStats *Stats
	if nilStats.Rel(0) != (RelStats{}) {
		t.Errorf("nil.Rel(0) = %+v, want zero", nilStats.Rel(0))
	}
}

// TestStatsCached verifies Stats computes once and answers from the
// cache afterwards (the same pointer, not a recomputation per read).
func TestStatsCached(t *testing.T) {
	db := NewDecompDB([]string{"R"}, []relation.Schema{relation.NewSchema("A")})
	if db.stats.Load() != nil {
		t.Fatal("fresh DecompDB already has cached stats")
	}
	first := db.Stats()
	if db.stats.Load() == nil {
		t.Fatal("Stats() did not cache its result")
	}
	if second := db.Stats(); second != first {
		t.Errorf("Stats() recomputed: %p then %p", first, second)
	}
}

// TestNormalizePrefillsStats: Normalize must leave the statistics cache
// pre-filled, and the cached value must describe the normalized shape —
// here a single-alternative component folded into the certain relation.
func TestNormalizePrefillsStats(t *testing.T) {
	names := []string{"R"}
	schemas := []relation.Schema{relation.NewSchema("A")}
	db := NewDecompDB(names, schemas)
	db.Certain[0].Insert(relation.Tuple{value.Int(50)})
	db.Components = append(db.Components, statsComp(schemas, 0, 1, 2))

	n := db.Normalize()
	if n.stats.Load() == nil {
		t.Fatal("Normalize did not pre-fill the statistics cache")
	}
	st := n.Stats()
	if got, want := st.Rel(0), (RelStats{Certain: 3, Alternative: 0, Components: 0}); got != want {
		t.Errorf("normalized R stats = %+v, want %+v (singleton component folded)", got, want)
	}
	if st.Components != 0 || len(st.AltHist) != 0 {
		t.Errorf("normalized Components/AltHist = %d/%v, want 0/empty", st.Components, st.AltHist)
	}
	if st.WorldsLog2() != 0 {
		t.Errorf("normalized WorldsLog2 = %v, want 0", st.WorldsLog2())
	}
}
