// Package wsd implements world-set decompositions, the compact
// representation system the paper's conclusion proposes as an
// implementation substrate for I-SQL ("another research direction is to
// implement I-SQL on top of an existing representation system for
// finite world-sets, like databases with lineage and uncertainty or
// world-set decompositions" — the latter is reference [4], the authors'
// companion ICDE 2007 paper, which grew into MayBMS).
//
// A decomposition represents a world-set over one relation as a product
// of independent components: a set of certain tuples present in every
// world, plus components each offering a set of alternatives (tuple
// sets), one of which every world picks. The represented world-set is
//
//	rep(D) = { Certain ∪ a₁ ∪ … ∪ aₙ | aᵢ ∈ Components[i] }
//
// and has ∏ |Components[i]| worlds while occupying only Σ |Components[i]|
// space — exponentially more succinct than both the explicit world-set
// and the inlined representation of Definition 5.1.
//
// The package provides the repair-by-key decomposition (each key group
// is an independent component, so the §2 census view scales to 2^40
// repairs without enumeration), possible/certain answers computed
// directly on the decomposition in polynomial time, a best-effort
// factorization of explicit world-sets, and the expansion back to
// worlds (budget-guarded via a typed BudgetError, for testing and for
// the factorized engine's fallback decision).
//
// DecompDB (decompdb.go) extends the representation from a single
// relation to whole databases — certain tuples per relation plus
// components whose alternatives may span several relations — and is
// the input and output representation of internal/wsdexec, the engine
// that evaluates World-set Algebra on decompositions without ever
// enumerating rep(D).
package wsd

import (
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"

	"worldsetdb/internal/relation"
	"worldsetdb/internal/worldset"
)

// DefaultExpandBudget is the world budget applied by Rep and
// DecompDB.Expand when the caller passes 0: the whole point of the
// representation is that expansion is usually infeasible, so
// enumeration is refused beyond this many worlds unless the caller
// explicitly raises the budget.
const DefaultExpandBudget = 1 << 20

// BudgetError reports that an expansion was refused because the
// decomposition represents more worlds than the caller's budget. It is
// a dedicated type so callers can tell "too big to enumerate" apart
// from genuine failures (schema mismatches, empty world-sets): the
// factorized engine in internal/wsdexec keys its fallback decision on
// it, and benchmarks use it to assert that no enumeration happened.
type BudgetError struct {
	// Worlds is the exact represented world count.
	Worlds *big.Int
	// Budget is the limit that was exceeded.
	Budget int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("wsd: %s worlds exceed the expansion budget %d", e.Worlds, e.Budget)
}

// Alternative is one choice of a component: a set of tuples that appear
// together.
type Alternative struct {
	rel *relation.Relation
}

// NewAlternative builds an alternative over the given schema.
func NewAlternative(schema relation.Schema, tuples ...relation.Tuple) Alternative {
	r := relation.New(schema)
	for _, t := range tuples {
		r.Insert(t)
	}
	return Alternative{rel: r}
}

// Tuples returns the alternative's tuples in deterministic order.
func (a Alternative) Tuples() []relation.Tuple { return a.rel.Tuples() }

// Len returns the number of tuples.
func (a Alternative) Len() int { return a.rel.Len() }

// Component is an independent choice: every world contains exactly one
// of its alternatives.
type Component struct {
	Alternatives []Alternative
}

// WSD is a world-set decomposition of a world-set over a single
// relation.
type WSD struct {
	Name       string
	Schema     relation.Schema
	Certain    *relation.Relation
	Components []Component
}

// New returns an empty decomposition (one world: the certain tuples).
func New(name string, schema relation.Schema) *WSD {
	return &WSD{Name: name, Schema: schema, Certain: relation.New(schema)}
}

// Worlds returns the exact number of represented worlds,
// ∏ |Components[i]|, as a big integer: repair decompositions routinely
// exceed 2^64, and engines decide whether enumeration is feasible by
// comparing this count against an explicit budget.
func (d *WSD) Worlds() *big.Int {
	n := big.NewInt(1)
	var m big.Int
	for _, c := range d.Components {
		n.Mul(n, m.SetInt64(int64(len(c.Alternatives))))
	}
	return n
}

// NumWorlds returns the number of represented worlds, saturating at
// math.MaxUint64. Prefer Worlds where the exact count matters.
func (d *WSD) NumWorlds() uint64 {
	n := d.Worlds()
	if !n.IsUint64() {
		return math.MaxUint64
	}
	return n.Uint64()
}

// Size returns the representation size: the total number of stored
// tuples across certain tuples and all alternatives.
func (d *WSD) Size() int {
	n := d.Certain.Len()
	for _, c := range d.Components {
		for _, a := range c.Alternatives {
			n += a.Len()
		}
	}
	return n
}

// Poss returns the possible tuples — the union over all worlds —
// computed directly on the decomposition in O(Size).
func (d *WSD) Poss() *relation.Relation {
	out := d.Certain.Clone()
	for _, c := range d.Components {
		for _, a := range c.Alternatives {
			a.rel.Each(func(t relation.Tuple) { out.Insert(t) })
		}
	}
	return out
}

// Cert returns the certain tuples — the intersection over all worlds —
// in O(Size): a tuple is certain iff it is in Certain or appears in
// every alternative of some component.
func (d *WSD) Cert() *relation.Relation {
	out := d.Certain.Clone()
	for _, c := range d.Components {
		if len(c.Alternatives) == 0 {
			continue
		}
		c.Alternatives[0].rel.Each(func(t relation.Tuple) {
			for _, a := range c.Alternatives[1:] {
				if !a.rel.Contains(t) {
					return
				}
			}
			out.Insert(t)
		})
	}
	return out
}

// Rep expands the decomposition into the explicit world-set. It
// refuses decompositions with more than maxWorlds worlds (0 means
// DefaultExpandBudget), returning a *BudgetError so callers can
// distinguish "too big to enumerate" from other failures. A component
// with no alternatives represents the empty world-set.
func (d *WSD) Rep(maxWorlds int) (*worldset.WorldSet, error) {
	if maxWorlds == 0 {
		maxWorlds = DefaultExpandBudget
	}
	n := d.Worlds()
	if !n.IsInt64() || n.Int64() > int64(maxWorlds) {
		return nil, &BudgetError{Worlds: n, Budget: maxWorlds}
	}
	ws := worldset.New([]string{d.Name}, []relation.Schema{d.Schema})
	if n.Sign() == 0 {
		return ws, nil
	}
	choice := make([]int, len(d.Components))
	for {
		w := d.Certain.Clone()
		for ci, c := range d.Components {
			c.Alternatives[choice[ci]].rel.Each(func(t relation.Tuple) { w.Insert(t) })
		}
		ws.Add(worldset.World{w})
		i := 0
		for ; i < len(d.Components); i++ {
			choice[i]++
			if choice[i] < len(d.Components[i].Alternatives) {
				break
			}
			choice[i] = 0
		}
		if i == len(d.Components) {
			break
		}
	}
	return ws, nil
}

// RepairByKey builds the decomposition of the §2 repair view directly:
// every group of tuples sharing a key value is an independent component
// whose alternatives are the individual tuples; singleton groups are
// certain. The construction is linear in the input and represents
// ∏ |group| worlds.
func RepairByKey(name string, rel *relation.Relation, keyAttrs []string) (*WSD, error) {
	idx, err := rel.Schema().Indexes(keyAttrs)
	if err != nil {
		return nil, err
	}
	groups := map[string][]relation.Tuple{}
	var order []string
	for _, t := range rel.Tuples() {
		var key []byte
		for _, i := range idx {
			key = t[i].AppendKey(key)
			key = append(key, 0x1f)
		}
		if _, ok := groups[string(key)]; !ok {
			order = append(order, string(key))
		}
		groups[string(key)] = append(groups[string(key)], t)
	}
	d := New(name, rel.Schema())
	for _, key := range order {
		g := groups[key]
		if len(g) == 1 {
			d.Certain.Insert(g[0])
			continue
		}
		comp := Component{}
		for _, t := range g {
			comp.Alternatives = append(comp.Alternatives, NewAlternative(rel.Schema(), t))
		}
		d.Components = append(d.Components, comp)
	}
	return d, nil
}

// Decompose factorizes an explicit world-set over a single relation
// into a decomposition. Tuples present in every world become certain;
// the remaining tuples are partitioned into blocks of pairwise-dependent
// tuples (tuples whose world memberships do not combine freely), and
// each block becomes a component whose alternatives are its per-world
// restrictions. The factorization is verified (the world counts must
// multiply out); if verification fails the world-set is kept as a
// single component, which is always correct.
func Decompose(name string, ws *worldset.WorldSet) (*WSD, error) {
	if ws.NumRelations() != 1 {
		return nil, fmt.Errorf("wsd: Decompose expects a single-relation world-set, got %d relations", ws.NumRelations())
	}
	worlds := ws.Worlds()
	if len(worlds) == 0 {
		return nil, fmt.Errorf("wsd: cannot decompose the empty world-set")
	}
	schema := ws.Schemas()[0]
	d := New(name, schema)

	// Certain tuples and the uncertain universe.
	certain := worlds[0][0].Clone()
	universe := relation.New(schema)
	for _, w := range worlds {
		next := relation.New(schema)
		certain.Each(func(t relation.Tuple) {
			if w[0].Contains(t) {
				next.Insert(t)
			}
		})
		certain = next
		w[0].Each(func(t relation.Tuple) { universe.Insert(t) })
	}
	d.Certain = certain
	var uncertain []relation.Tuple
	universe.Each(func(t relation.Tuple) {
		if !certain.Contains(t) {
			uncertain = append(uncertain, t)
		}
	})
	sort.Slice(uncertain, func(i, j int) bool { return uncertain[i].Less(uncertain[j]) })
	if len(uncertain) == 0 {
		return d, nil
	}

	// Membership signatures: which worlds contain each uncertain tuple.
	sig := make([][]bool, len(uncertain))
	for i, t := range uncertain {
		sig[i] = make([]bool, len(worlds))
		for wi, w := range worlds {
			sig[i][wi] = w[0].Contains(t)
		}
	}

	// Union-find over pairwise-dependent tuples.
	parent := make([]int, len(uncertain))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < len(uncertain); i++ {
		for j := i + 1; j < len(uncertain); j++ {
			if !pairwiseIndependent(sig[i], sig[j]) {
				union(i, j)
			}
		}
	}
	blocks := map[int][]int{}
	for i := range uncertain {
		blocks[find(i)] = append(blocks[find(i)], i)
	}
	roots := make([]int, 0, len(blocks))
	for r := range blocks {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	// One component per block: its alternatives are the distinct
	// restrictions of the worlds to the block's tuples.
	total := uint64(1)
	for _, r := range roots {
		comp := Component{}
		seen := map[string]bool{}
		for wi := range worlds {
			rel := relation.New(schema)
			for _, ti := range blocks[r] {
				if sig[ti][wi] {
					rel.Insert(uncertain[ti])
				}
			}
			key := rel.ContentKey()
			if !seen[key] {
				seen[key] = true
				comp.Alternatives = append(comp.Alternatives, Alternative{rel: rel})
			}
		}
		d.Components = append(d.Components, comp)
		total *= uint64(len(comp.Alternatives))
	}

	// Verify the factorization: the product of alternative counts must
	// equal the world count, otherwise blocks are jointly dependent even
	// though pairwise independent — fall back to one component.
	if total != uint64(len(worlds)) {
		fallback := Component{}
		for _, w := range worlds {
			rel := relation.New(schema)
			w[0].Each(func(t relation.Tuple) {
				if !certain.Contains(t) {
					rel.Insert(t)
				}
			})
			fallback.Alternatives = append(fallback.Alternatives, Alternative{rel: rel})
		}
		d.Components = []Component{fallback}
	}
	return d, nil
}

// pairwiseIndependent reports whether two membership signatures combine
// freely: the set of observed (a, b) presence patterns equals the
// product of the marginals.
func pairwiseIndependent(a, b []bool) bool {
	var marginalA, marginalB [2]bool
	var joint [2][2]bool
	for i := range a {
		ai, bi := b2i(a[i]), b2i(b[i])
		marginalA[ai] = true
		marginalB[bi] = true
		joint[ai][bi] = true
	}
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			if marginalA[x] && marginalB[y] && !joint[x][y] {
				return false
			}
		}
	}
	return true
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// String renders the decomposition compactly.
func (d *WSD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WSD %s over %v: %d certain tuple(s), %d component(s), %d world(s), size %d\n",
		d.Name, []string(d.Schema), d.Certain.Len(), len(d.Components), d.NumWorlds(), d.Size())
	for i, c := range d.Components {
		fmt.Fprintf(&b, "  component %d: %d alternatives\n", i+1, len(c.Alternatives))
	}
	return b.String()
}
