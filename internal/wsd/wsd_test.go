package wsd_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
)

// TestRepairByKeyCensus: the paper's 5-row census decomposes into 1
// certain tuple and two 2-alternative components — 4 worlds in size 5.
func TestRepairByKeyCensus(t *testing.T) {
	d, err := wsd.RepairByKey("Census", datagen.PaperCensus(), []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Certain.Len() != 1 {
		t.Errorf("certain tuples = %d, want 1 (SSN 333)", d.Certain.Len())
	}
	if len(d.Components) != 2 {
		t.Errorf("components = %d, want 2", len(d.Components))
	}
	if d.NumWorlds() != 4 {
		t.Errorf("worlds = %d, want 4", d.NumWorlds())
	}
	if d.Size() != 5 {
		t.Errorf("size = %d, want 5 (the input tuples)", d.Size())
	}
}

// TestRepairDecompositionMatchesEnumeration: Rep(wsd.RepairByKey(R)) equals
// the reference repair-by-key world enumeration.
func TestRepairDecompositionMatchesEnumeration(t *testing.T) {
	census := datagen.PaperCensus()
	d, err := wsd.RepairByKey("Census", census, []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Rep(0)
	if err != nil {
		t.Fatal(err)
	}
	ws := worldset.FromDB([]string{"Census"}, []*relation.Relation{census})
	ref, err := wsa.Eval(&wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}, ws)
	if err != nil {
		t.Fatal(err)
	}
	// The reference result carries (Census, answer); project to the
	// answer only for comparison.
	refAnswers := worldset.New([]string{"Census"}, []relation.Schema{census.Schema()})
	ref.Each(func(w worldset.World) { refAnswers.Add(worldset.World{w[1]}) })
	if !got.EqualWorlds(refAnswers) {
		t.Fatalf("decomposition expands to different repairs:\n%s\nvs\n%s", got, refAnswers)
	}
}

// TestHugeRepairWithoutEnumeration is the point of the representation:
// 40 duplicated SSNs mean 2^40 repairs — far beyond enumeration — yet
// possible and certain answers come out in microseconds from the
// decomposition.
func TestHugeRepairWithoutEnumeration(t *testing.T) {
	census := datagen.Census(10000, 40, 7)
	d, err := wsd.RepairByKey("Census", census, []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.NumWorlds(), uint64(1)<<40; got != want {
		t.Fatalf("worlds = %d, want 2^40 = %d", got, want)
	}
	if d.Size() != census.Len() {
		t.Fatalf("size = %d, want the %d input tuples", d.Size(), census.Len())
	}
	poss := d.Poss()
	if poss.Len() != census.Len() {
		t.Errorf("every input tuple is possible: got %d of %d", poss.Len(), census.Len())
	}
	cert := d.Cert()
	// Exactly the tuples of non-duplicated SSNs are certain.
	if got, want := cert.Len(), census.Len()-2*40; got != want {
		t.Errorf("certain tuples = %d, want %d", got, want)
	}
	if _, err := d.Rep(1 << 16); err == nil {
		t.Error("expansion of 2^40 worlds must be refused")
	}
}

// TestPossCertAgainstExpansion: on expandable decompositions, Poss and
// Cert agree with the explicit union/intersection over worlds.
func TestPossCertAgainstExpansion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		census := datagen.Census(6+rng.Intn(6), 1+rng.Intn(3), seed)
		d, err := wsd.RepairByKey("R", census, []string{"SSN"})
		if err != nil {
			return false
		}
		ws, err := d.Rep(0)
		if err != nil {
			return false
		}
		worlds := ws.Worlds()
		union := relation.New(d.Schema)
		inter := worlds[0][0].Clone()
		for _, w := range worlds {
			w[0].Each(func(tup relation.Tuple) { union.Insert(tup) })
			next := relation.New(d.Schema)
			inter.Each(func(tup relation.Tuple) {
				if w[0].Contains(tup) {
					next.Insert(tup)
				}
			})
			inter = next
		}
		return d.Poss().Equal(union) && d.Cert().Equal(inter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeRoundTrip: Decompose followed by Rep reproduces the
// world-set, and independent structure is actually factored.
func TestDecomposeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := datagen.RandomWorldSet(rng, []string{"R"},
			[]relation.Schema{relation.NewSchema("A", "B")}, 3, 4, 6)
		d, err := wsd.Decompose("R", ws)
		if err != nil {
			return false
		}
		back, err := d.Rep(0)
		if err != nil {
			return false
		}
		return back.EqualWorlds(ws)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeFactorsProducts: a world-set that is a genuine product of
// two independent choices decomposes into two components (succinctness),
// not one.
func TestDecomposeFactorsProducts(t *testing.T) {
	schema := relation.NewSchema("A")
	mk := func(vals ...int64) *relation.Relation {
		r := relation.New(schema)
		for _, v := range vals {
			r.InsertValues(intVal(v))
		}
		return r
	}
	// Worlds: {1 or 2} × {10 or 20} — four worlds.
	ws := worldset.New([]string{"R"}, []relation.Schema{schema})
	for _, a := range []int64{1, 2} {
		for _, b := range []int64{10, 20} {
			ws.Add(worldset.World{mk(a, b)})
		}
	}
	d, err := wsd.Decompose("R", ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Components) != 2 {
		t.Fatalf("expected 2 independent components, got %d:\n%s", len(d.Components), d)
	}
	if d.NumWorlds() != 4 {
		t.Fatalf("worlds = %d, want 4", d.NumWorlds())
	}
	if d.Size() != 4 {
		t.Fatalf("size = %d, want 4 (2 + 2 alternatives)", d.Size())
	}
	back, err := d.Rep(0)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualWorlds(ws) {
		t.Fatal("factored decomposition must expand to the input")
	}
}

// TestDecomposeCorrelatedFallsBack: XOR-correlated tuples (never
// together, never both absent) cannot factor and stay in one component.
func TestDecomposeCorrelatedFallsBack(t *testing.T) {
	schema := relation.NewSchema("A")
	mk := func(vals ...int64) *relation.Relation {
		r := relation.New(schema)
		for _, v := range vals {
			r.InsertValues(intVal(v))
		}
		return r
	}
	ws := worldset.New([]string{"R"}, []relation.Schema{schema})
	ws.Add(worldset.World{mk(1)})
	ws.Add(worldset.World{mk(2)})
	d, err := wsd.Decompose("R", ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Components) != 1 {
		t.Fatalf("XOR tuples must share a component, got %d", len(d.Components))
	}
	back, err := d.Rep(0)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualWorlds(ws) {
		t.Fatal("round trip failed")
	}
}

// TestNumWorldsSaturates: overflow saturates instead of wrapping.
func TestNumWorldsSaturates(t *testing.T) {
	d := wsd.New("R", relation.NewSchema("A"))
	alt := wsd.NewAlternative(d.Schema)
	comp := wsd.Component{Alternatives: []wsd.Alternative{alt, alt, alt, alt}}
	for i := 0; i < 40; i++ { // 4^40 = 2^80 > 2^64
		d.Components = append(d.Components, comp)
	}
	if d.NumWorlds() != math.MaxUint64 {
		t.Fatalf("expected saturation at MaxUint64, got %d", d.NumWorlds())
	}
}

func intVal(v int64) value.Value { return value.Int(v) }
