package wsdexec

import (
	"sort"

	"worldsetdb/internal/relation"
)

// frel is a factored answer relation over the engine's component
// universe: the relation's instance in the world selecting alternative
// aᵢ for component i is
//
//	cert ∪ ⋃_c parts[c][a_c]
//
// — certain tuples present everywhere plus, per component, the extra
// tuples contributed by the chosen alternative. A tuple may appear in
// the extras of several (component, alternative) slots; its presence
// condition is the disjunction of the corresponding choices. This
// additive form is closed under selection, projection, renaming and
// union; products, intersections and differences stay inside it
// exactly when their cross terms do not couple distinct components
// (see the entanglement checks in wsdexec.go).
type frel struct {
	schema relation.Schema
	cert   *relation.Relation
	// parts maps a component id to its per-alternative extras; a slice
	// entry may be nil (that alternative contributes nothing). When a
	// component id is present the slice has exactly arity(c) entries.
	parts map[int][]*relation.Relation
}

func newFrel(schema relation.Schema) *frel {
	return &frel{schema: schema, cert: relation.New(schema), parts: map[int][]*relation.Relation{}}
}

// part returns the extras of (c, a), possibly nil.
func (f *frel) part(c, a int) *relation.Relation {
	s := f.parts[c]
	if s == nil {
		return nil
	}
	return s[a]
}

// slot returns the extras relation of (c, a), allocating the component
// slice (of the given arity) and an empty relation on first use.
func (f *frel) slot(c, arity, a int) *relation.Relation {
	s := f.parts[c]
	if s == nil {
		s = make([]*relation.Relation, arity)
		f.parts[c] = s
	}
	if s[a] == nil {
		s[a] = relation.New(f.schema)
	}
	return s[a]
}

// setPart stores a part relation, allocating the component slice.
func (f *frel) setPart(c, arity, a int, r *relation.Relation) {
	s := f.parts[c]
	if s == nil {
		s = make([]*relation.Relation, arity)
		f.parts[c] = s
	}
	s[a] = r
}

// compIDs returns the component ids with stored parts, sorted, so every
// traversal of the factored form is deterministic.
func (f *frel) compIDs() []int {
	out := make([]int, 0, len(f.parts))
	for c := range f.parts {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// uncertainComps returns the ids of components with at least one
// non-empty part, sorted: the components the relation's content
// actually depends on.
func (f *frel) uncertainComps() []int {
	var out []int
	for c, alts := range f.parts {
		for _, p := range alts {
			if p != nil && p.Len() > 0 {
				out = append(out, c)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// size returns the stored tuple count across all pieces, used to gate
// the parallel fan-out like the physical operators do.
func (f *frel) size() int {
	n := f.cert.Len()
	for _, alts := range f.parts {
		for _, p := range alts {
			if p != nil {
				n += p.Len()
			}
		}
	}
	return n
}
