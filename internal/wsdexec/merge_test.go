package wsdexec

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/randquery"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
)

// TestMergeVsExpandRandomizedParity evaluates random queries over
// random decompositions twice — bounded merging enabled versus disabled
// (NoMerge, i.e. the enumeration fallback) — and requires identical
// expanded world-sets. Runs under -race in CI, exercising the
// slot-parallel operators across merged components.
func TestMergeVsExpandRandomizedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	gen := randquery.NewQueryGen(rng, names, schemas)
	mergedPlans := 0
	for i := 0; i < 300; i++ {
		db := datagen.RandomDecompDB(rng, names, schemas, 3, 2, 3, 3, 2)
		q := gen.Query(1 + rng.Intn(3))
		outM, planM, errM := EvalOpts(q, db, nil)
		outX, planX, errX := EvalOpts(q, db, &Options{NoMerge: true})
		if (errM == nil) != (errX == nil) {
			t.Fatalf("query %d: merge path error %v vs expand path error %v\nquery: %s", i, errM, errX, q)
		}
		if errM != nil {
			continue
		}
		wsM, err := outM.Expand(1 << 20)
		if err != nil {
			t.Fatalf("query %d: merged output not expandable: %v", i, err)
		}
		wsX, err := outX.Expand(1 << 20)
		if err != nil {
			t.Fatalf("query %d: expanded-path output not expandable: %v", i, err)
		}
		if !wsM.EqualWorlds(wsX) {
			t.Fatalf("query %d: merge and expand paths disagree\nquery: %s\nplans: %v / %v\nmerged:\n%s\nexpanded:\n%s",
				i, q, planM, planX, wsM, wsX)
		}
		if planM.Native && len(planM.Merges) > 0 {
			mergedPlans++
		}
	}
	if mergedPlans < 20 {
		t.Fatalf("merge path under-exercised: only %d of 300 queries merged", mergedPlans)
	}
}

// tornDB builds a two-relation decomposition whose only entanglement
// couples a 3-alternative component (relation R) with a 4-alternative
// component (relation S): merge cost exactly 12.
func tornDB(t *testing.T) (*wsd.DecompDB, wsa.Expr) {
	t.Helper()
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A"), relation.NewSchema("B")}
	db := wsd.NewDecompDB(names, schemas)
	comp := func(ri, n int) wsd.DBComponent {
		c := wsd.DBComponent{}
		for a := 0; a < n; a++ {
			r := relation.New(schemas[ri])
			r.Insert(relation.Tuple{value.Int(int64(a))})
			c.Alternatives = append(c.Alternatives, wsd.DBAlternative{Rels: map[int]*relation.Relation{ri: r}})
		}
		return c
	}
	db.Components = append(db.Components, comp(0, 3), comp(1, 4))
	return db, wsa.NewProduct(&wsa.Rel{Name: "R"}, &wsa.Rel{Name: "S"})
}

// TestPrelowerPushdownAvoidsMerge shows why Prelower pushes selections
// below entangling operators: a selection that (per world) empties one
// operand removes that operand's component from the entanglement set,
// so the product needs no merge at all — while the same query evaluated
// without the rewrite must merge the coupled components (cost 12) to
// stay native, and cannot run natively with merging disabled.
func TestPrelowerPushdownAvoidsMerge(t *testing.T) {
	db, prod := tornDB(t)
	q := &wsa.Select{Pred: ra.EqConst("A", value.Int(99)), From: prod}
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wsa.Eval(q, ws)
	if err != nil {
		t.Fatal(err)
	}

	// With the rewrite: σ_{A=99} sinks onto R, empties it in every
	// alternative, and the product never entangles — native with zero
	// merges even when merging is disabled outright.
	out, plan, err := EvalOpts(q, db, &Options{NoMerge: true, NoFallback: true})
	if err != nil {
		t.Fatalf("pushed evaluation failed: %v", err)
	}
	if !plan.Native || !plan.Rewritten || len(plan.Merges) != 0 {
		t.Fatalf("expected a native, rewritten, merge-free plan, got %v", plan)
	}
	got, err := out.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWorlds(want) {
		t.Fatalf("pushed result disagrees with reference\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Without the rewrite the product evaluates first: components 0 and
	// 1 entangle and staying native costs a 12-alternative merge...
	_, plan, err = EvalOpts(q, db, &Options{NoRewrite: true, NoFallback: true})
	if err != nil {
		t.Fatalf("unpushed evaluation failed: %v", err)
	}
	if len(plan.Merges) != 1 || plan.MergeCost != 12 {
		t.Fatalf("unpushed plan should merge at cost 12, got %v", plan)
	}

	// ...and with merging disabled it cannot run natively at all.
	if _, _, err := EvalOpts(q, db, &Options{NoRewrite: true, NoMerge: true, NoFallback: true}); err == nil {
		t.Fatal("unpushed + NoMerge: expected an entanglement error")
	}
}

// TestMergeTornBudget sweeps the budget across the merge cost: exactly
// at cost the evaluation stays native via a merge; one below, the merge
// is refused and the fallback's Expand raises the typed *wsd.BudgetError
// carrying the entangled-component diagnostics.
func TestMergeTornBudget(t *testing.T) {
	db, q := tornDB(t)
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wsa.Eval(q, ws)
	if err != nil {
		t.Fatal(err)
	}

	// Budget exactly at the merge cost: native, one merge of cost 12.
	out, plan, err := EvalOpts(q, db, &Options{ExpandBudget: 12, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Native || len(plan.Merges) != 1 || plan.Merges[0].Cost != 12 || plan.MergeCost != 12 {
		t.Fatalf("budget 12: expected one native merge of cost 12, got %v", plan)
	}
	got, err := out.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWorlds(want) {
		t.Fatalf("budget 12: merged result disagrees with reference\ngot:\n%s\nwant:\n%s", got, want)
	}

	// One below: the merge is refused, and since the world count is at
	// least the merge cost, the fallback's Expand refuses too — the
	// error must carry the typed budget refusal plus the component ids.
	_, _, err = EvalOpts(q, db, &Options{ExpandBudget: 11})
	if err == nil {
		t.Fatal("budget 11: expected a budget refusal")
	}
	var be *wsd.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget 11: error does not wrap *wsd.BudgetError: %v", err)
	}
	for _, frag := range []string{"entangles decomposition components [0 1]", "relations [R S]", "merge cost 12"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("budget 11: error %q lacks %q", err.Error(), frag)
		}
	}

	// NoFallback one below cost: the entangle error surfaces directly.
	if _, _, err := EvalOpts(q, db, &Options{ExpandBudget: 11, NoFallback: true}); err == nil {
		t.Fatal("budget 11 + NoFallback: expected an entanglement error")
	}
}
