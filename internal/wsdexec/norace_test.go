//go:build !race

package wsdexec

const raceEnabled = false
