package wsdexec

import (
	"math/rand"
	"testing"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/randquery"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/value"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
)

// TestPlanChoiceNeutralitySweep runs random queries over random
// decompositions through four planning configurations — the full
// cost-based pipeline, the rewrite search disabled, product reordering
// disabled, and bounded merging disabled (enumeration fallback) — and
// requires all four to expand to identical world-sets. Whatever plan
// the cost model picks may only ever change speed, never answers. Runs
// under -race in CI.
func TestPlanChoiceNeutralitySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	names := []string{"R", "S", "T"}
	schemas := []relation.Schema{
		relation.NewSchema("A", "B"), relation.NewSchema("C"), relation.NewSchema("D")}
	gen := randquery.NewQueryGen(rng, names, schemas)
	arms := []struct {
		name string
		opt  *Options
	}{
		{"stats-planned", nil},
		{"no-rewrite", &Options{NoRewrite: true}},
		{"no-reorder", &Options{NoReorder: true}},
		{"no-merge", &Options{NoMerge: true}},
	}
	rewritten, reordered, merged := 0, 0, 0
	for i := 0; i < 500; i++ {
		db := datagen.RandomDecompDB(rng, names, schemas, 3, 2, 3, 3, 2)
		q := gen.Query(1 + rng.Intn(4))
		refOut, refPlan, refErr := EvalOpts(q, db, arms[0].opt)
		if refErr == nil {
			if refPlan.Rewritten {
				rewritten++
			}
			if refPlan.Reordered {
				reordered++
			}
			if refPlan.Native && len(refPlan.Merges) > 0 {
				merged++
			}
		}
		for _, arm := range arms[1:] {
			out, plan, err := EvalOpts(q, db, arm.opt)
			if (refErr == nil) != (err == nil) {
				t.Fatalf("query %d: %s error %v vs %s error %v\nquery: %s",
					i, arms[0].name, refErr, arm.name, err, q)
			}
			if refErr != nil {
				continue
			}
			wsRef, err := refOut.Expand(1 << 20)
			if err != nil {
				t.Fatalf("query %d: %s output not expandable: %v", i, arms[0].name, err)
			}
			wsArm, err := out.Expand(1 << 20)
			if err != nil {
				t.Fatalf("query %d: %s output not expandable: %v", i, arm.name, err)
			}
			if !wsRef.EqualWorlds(wsArm) {
				t.Fatalf("query %d: %s and %s disagree\nquery: %s\nplans: %v / %v\n%s:\n%s\n%s:\n%s",
					i, arms[0].name, arm.name, q, refPlan, plan,
					arms[0].name, wsRef, arm.name, wsArm)
			}
		}
	}
	t.Logf("500 queries: %d rewritten, %d reordered, %d merged natively", rewritten, reordered, merged)
	if merged < 20 {
		t.Fatalf("merge path under-exercised: only %d of 500 queries merged", merged)
	}
}

// TestReorderNeutralityChain pins the reorder path deterministically
// (the random sweep cannot guarantee a ≥3-way chain): a four-way
// product chain written largest-first, over a decomposition mixing
// certain and alternative pieces, must be reordered by the stats
// planner and still expand to exactly the world-set the written order
// produces.
func TestReorderNeutralityChain(t *testing.T) {
	names := []string{"Big", "Mid", "U", "One"}
	schemas := []relation.Schema{
		relation.NewSchema("A"), relation.NewSchema("B"),
		relation.NewSchema("C"), relation.NewSchema("D")}
	db := wsd.NewDecompDB(names, schemas)
	for i := 0; i < 40; i++ {
		db.Certain[0].Insert(relation.Tuple{value.Int(int64(i))})
	}
	for i := 0; i < 6; i++ {
		db.Certain[1].Insert(relation.Tuple{value.Int(int64(i))})
	}
	// U is uncertain: one 2-alternative component.
	comp := wsd.DBComponent{}
	for a := 0; a < 2; a++ {
		r := relation.New(schemas[2])
		r.Insert(relation.Tuple{value.Int(int64(a))})
		comp.Alternatives = append(comp.Alternatives, wsd.DBAlternative{Rels: map[int]*relation.Relation{2: r}})
	}
	db.Components = append(db.Components, comp)
	db.Certain[3].Insert(relation.Tuple{value.Int(7)})

	chain := wsa.Expr(&wsa.Rel{Name: "Big"})
	for _, n := range names[1:] {
		chain = wsa.NewProduct(chain, &wsa.Rel{Name: n})
	}
	ordered, orderedPlan, err := EvalOpts(chain, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !orderedPlan.Reordered {
		t.Fatalf("stats planner did not reorder the chain: %v", orderedPlan)
	}
	written, writtenPlan, err := EvalOpts(chain, db, &Options{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if writtenPlan.Reordered {
		t.Fatalf("NoReorder arm reports a reorder: %v", writtenPlan)
	}
	wsO, err := ordered.Expand(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	wsW, err := written.Expand(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !wsO.EqualWorlds(wsW) {
		t.Fatalf("reordered chain changed the answer\nordered:\n%s\nwritten:\n%s", wsO, wsW)
	}
}
