//go:build race

package wsdexec

// raceEnabled relaxes wall-clock assertions when the race detector (and
// its order-of-magnitude slowdown) is on.
const raceEnabled = true
