package wsdexec

import (
	"sort"

	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/wsa"
)

// This file is the execution-side half of cost-based planning: ordering
// the pieces of n-ary ×/⋈ chains by their estimated cardinality before
// lowering. The factorized product evaluates pairwise, so a left-deep
// chain materializes every prefix product; putting the smallest
// estimated pieces first minimizes those intermediates (the classic
// join-ordering argument, applied to the certain and per-alternative
// partitions alike). Reordering never changes the represented
// world-set: the chain is rebuilt smallest-first and wrapped in a
// projection restoring the original column order, so results stay
// byte-identical with the naive order.

// productChain collects the leaves of a maximal pure-product subtree
// (joins carry predicates anchored to their own operand pair, so only
// predicate-free products reorder freely).
func productChain(q wsa.Expr) []wsa.Expr {
	if n, ok := q.(*wsa.BinOp); ok && n.Kind == wsa.OpProduct {
		return append(productChain(n.L), productChain(n.R)...)
	}
	return []wsa.Expr{q}
}

// reorderChain rebuilds a product chain's leaves in ascending estimated
// cardinality. It declines (returning ok=false) when the chain is too
// short to have intermediates, a leaf's schema cannot be computed, or
// column names collide across leaves (the restoring projection would be
// ambiguous).
func reorderChain(leaves []wsa.Expr, st rewrite.Stats, env *wsa.Env) (wsa.Expr, bool) {
	if len(leaves) < 3 {
		return nil, false
	}
	var columns []string
	seen := map[string]bool{}
	for _, l := range leaves {
		s, err := l.Schema(env)
		if err != nil {
			return nil, false
		}
		for _, c := range s {
			if seen[c] {
				return nil, false
			}
			seen[c] = true
			columns = append(columns, c)
		}
	}
	order := make([]int, len(leaves))
	cards := make([]float64, len(leaves))
	for i, l := range leaves {
		order[i] = i
		cards[i] = rewrite.EstimateCard(l, st)
	}
	sort.SliceStable(order, func(a, b int) bool { return cards[order[a]] < cards[order[b]] })
	changed := false
	for i, o := range order {
		if i != o {
			changed = true
			break
		}
	}
	if !changed {
		return nil, false
	}
	chain := leaves[order[0]]
	for _, o := range order[1:] {
		chain = &wsa.BinOp{Kind: wsa.OpProduct, L: chain, R: leaves[o]}
	}
	return &wsa.Project{Columns: columns, From: chain}, true
}

// reorderProducts walks the plan and reorders every maximal product
// chain of three or more pieces by estimated cardinality, recursing
// into the pieces themselves first (selections already pushed below the
// chain by Prelower are part of the leaf estimates).
func reorderProducts(q wsa.Expr, st rewrite.Stats, env *wsa.Env) wsa.Expr {
	switch n := q.(type) {
	case *wsa.Select:
		return &wsa.Select{Pred: n.Pred, From: reorderProducts(n.From, st, env)}
	case *wsa.Project:
		return &wsa.Project{Columns: n.Columns, From: reorderProducts(n.From, st, env)}
	case *wsa.Rename:
		return &wsa.Rename{Pairs: n.Pairs, From: reorderProducts(n.From, st, env)}
	case *wsa.Choice:
		return &wsa.Choice{Attrs: n.Attrs, From: reorderProducts(n.From, st, env)}
	case *wsa.Group:
		return &wsa.Group{Kind: n.Kind, GroupBy: n.GroupBy, Proj: n.Proj,
			From: reorderProducts(n.From, st, env)}
	case *wsa.Close:
		return &wsa.Close{Kind: n.Kind, From: reorderProducts(n.From, st, env)}
	case *wsa.RepairKey:
		return &wsa.RepairKey{Attrs: n.Attrs, From: reorderProducts(n.From, st, env)}
	case *wsa.Join:
		return &wsa.Join{L: reorderProducts(n.L, st, env),
			R: reorderProducts(n.R, st, env), Pred: n.Pred}
	case *wsa.BinOp:
		if n.Kind != wsa.OpProduct {
			return &wsa.BinOp{Kind: n.Kind, L: reorderProducts(n.L, st, env),
				R: reorderProducts(n.R, st, env)}
		}
		leaves := productChain(n)
		for i, l := range leaves {
			leaves[i] = reorderProducts(l, st, env)
		}
		if out, ok := reorderChain(leaves, st, env); ok {
			return out
		}
		chain := leaves[0]
		for _, l := range leaves[1:] {
			chain = &wsa.BinOp{Kind: wsa.OpProduct, L: chain, R: l}
		}
		return chain
	}
	return q
}
