// Package wsdexec is the factorized evaluation engine: it evaluates
// World-set Algebra queries directly over a multi-relation world-set
// decomposition (wsd.DecompDB) without ever enumerating the represented
// worlds, making query cost polynomial in the decomposition size —
// independent of the world count. This is the implementation substrate
// the paper's conclusion proposes for I-SQL ("implement I-SQL on top of
// an existing representation system for finite world-sets, like ...
// world-set decompositions"): the §2 census-repair view with 2^40
// repairs answers cert/poss in milliseconds here, where the reference,
// translated and physical engines all pay Ω(#worlds).
//
// # Evaluation
//
// Every subquery evaluates to a factored relation (see frel): certain
// tuples plus per-component, per-alternative extras. Selections,
// projections and renames map over the pieces (component-parallel on
// the worker pool of relation/pool.go, with a slot-deterministic
// merge); unions merge pieces; products hash-join certain and
// alternative partitions through the cached indexes of
// relation.IndexOn; intersections and differences combine per-tuple
// presence conditions; poss and cert are component-local scans;
// choice-of and repair-by-key on certain inputs split fresh components;
// group-worlds-by aggregates per alternative when the answer depends on
// a single component. Before lowering, rewrite.Prelower first pushes
// selections (and cleanly-splitting projections) below ×/⋈/∩/−
// (rewrite.PushSelections) — operands are filtered before the operator
// inspects which components they depend on, so a selection that
// empties a component's contribution removes that component from the
// entanglement set and merges stay small or vanish — then applies the
// Figure 7 equivalences that are sound on arbitrary world-sets, which
// eliminates many group-worlds-by/choice-of operators outright.
//
// # Entanglement and bounded merging
//
// Operators whose result would couple the choices of two distinct
// components — pγ/cγ aggregation and group-worlds-by over answers
// spanning components, products/joins of subqueries uncertain in
// different components, the cross-component cases of ∩ and − — cannot
// be expressed directly in the additive factored form. The engine
// resolves them with a decision tree, in order:
//
//  1. Merge locally (bounded component merging): collapse exactly the
//     coupled components into one, in the wsd.MergeComponents
//     mixed-radix layout, when the merge cost — the product of just
//     those components' alternative counts — fits the expansion budget.
//     Evaluation stays native and the cost depends on the coupled
//     components only, never on the world count: a 2^40-world
//     decomposition aggregates over two 2-alternative components by
//     materializing a 2×2 = 4-alternative merge. Components absorbed by
//     a merge are recorded as slaved to the merged root; factored
//     relations already holding parts on them are promoted onto the
//     root at their next use. Each merge is recorded in Plan.Merges.
//
//  2. Fall back to enumeration: when the merge cost itself exceeds the
//     budget — or the operator cannot merge at all (choice-of and
//     repair-by-key over uncertain answers refine worlds individually,
//     which no finite merge expresses) — the engine enumerates the
//     input through the guarded wsd Expand (refusing via
//     *wsd.BudgetError beyond the budget) and delegates the query to
//     the physical engine (or the reference evaluator when the query
//     contains repair-by-key, which physical cannot run). The
//     enumerated output is re-factorized with wsd.Refactor before it is
//     returned, so downstream statements keep working on a
//     decomposition.
//
// Every evaluation returns a Plan recording whether it stayed native,
// the merges it performed, and, on fallback, the operator plus the
// coupled component ids and relation names that forced enumeration —
// benchmarks count those.
package wsdexec

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"worldsetdb/internal/obs"
	"worldsetdb/internal/physical"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
)

func init() {
	wsa.RegisterEngine("wsdexec", EvalWorldSet)
}

// Options tune the factorized engine.
type Options struct {
	// ExpandBudget caps world enumeration during fallback (and when
	// expanding world-set-level results); 0 means
	// wsd.DefaultExpandBudget.
	ExpandBudget int
	// NoRewrite disables the pre-lowering rewrite pass
	// (rewrite.Prelower).
	NoRewrite bool
	// NoReorder disables the cost-based reordering of product chains by
	// estimated piece cardinality (reorderProducts); benchmarks use it
	// as the naive-order ablation arm.
	NoReorder bool
	// NoFallback turns entangling operators into errors instead of
	// enumerating; tests and benchmarks use it to prove evaluations
	// stayed native.
	NoFallback bool
	// NoMerge disables bounded component merging, restoring the
	// enumerate-on-entangle behavior; differential tests use it to
	// compare the merged and expanded evaluations of one query.
	NoMerge bool
	// AssumeFallback, when non-empty, skips the native attempt and goes
	// straight to the enumeration fallback as if the named operator had
	// entangled. Plan caches use it to skip a native attempt that
	// deterministically failed before; it must only be set while the
	// decomposition fingerprint is unchanged since the recorded
	// fallback — the same query on the same decomposition shape
	// entangles (or not) identically.
	AssumeFallback string
	// Shards, when non-nil, maps each component index of the input
	// decomposition to its home shard in a sharded catalog
	// (store.Snapshot.CompShards). Per-piece parallel scans order their
	// work units by shard so chunk boundaries align with shard
	// boundaries — the scatter half of scatter/gather query execution.
	// Results are gathered into fixed per-piece cells, so the ordering
	// never changes what a query answers.
	Shards []int
	// Trace, when non-nil, receives one child span per stage and per
	// operator evaluated (with merge events and component counts). nil —
	// the default — keeps evaluation allocation-free of tracing.
	Trace *obs.Span
}

func (o *Options) budget() int {
	if o == nil || o.ExpandBudget == 0 {
		return wsd.DefaultExpandBudget
	}
	return o.ExpandBudget
}

// MergeStep records one bounded component merge performed during
// native evaluation: the operator that required it, the (live)
// component ids that were merged, and the alternative count of the
// merged component.
type MergeStep struct {
	Op         string
	Components []int
	Cost       int
}

// Plan records how a query was evaluated.
type Plan struct {
	// Native reports that the query ran entirely on the decomposition,
	// with no world enumeration.
	Native bool
	// FallbackOp names the operator that entangled components and
	// forced enumeration ("" when Native).
	FallbackOp string
	// FallbackEngine is the engine the query was delegated to
	// ("physical" or "reference"; "" when Native).
	FallbackEngine string
	// FallbackComponents and FallbackRelations identify, on fallback,
	// the coupled component ids and the relation names they range over
	// ("derived" for components created during evaluation).
	FallbackComponents []int
	FallbackRelations  []string
	// InputWorlds is the exact world count of the input decomposition.
	InputWorlds *big.Int
	// NewComponents counts components created by choice-of,
	// repair-by-key and merging during native evaluation, net of the
	// components absorbed into merges.
	NewComponents int
	// Merges lists the bounded component merges performed during native
	// evaluation, in order; MergeCost is the largest merged component's
	// alternative count (1 when no merge happened).
	Merges    []MergeStep
	MergeCost int
	// Rewritten reports that rewrite.Prelower changed the query before
	// lowering.
	Rewritten bool
	// Reordered reports that a product chain was reordered by estimated
	// piece cardinality before lowering.
	Reordered bool
	// Search is the rewrite search effort (candidates expanded versus
	// pruned by the branch-and-bound bound); zero when NoRewrite.
	Search rewrite.SearchStats
}

func (p *Plan) String() string {
	if p.Native {
		s := fmt.Sprintf("native (worlds=%s, new components=%d, rewritten=%v)",
			p.InputWorlds, p.NewComponents, p.Rewritten)
		for _, m := range p.Merges {
			s += fmt.Sprintf("; merged components %v (cost %d) at %s", m.Components, m.Cost, m.Op)
		}
		return s
	}
	s := fmt.Sprintf("fallback at %s via %s engine (worlds=%s)",
		p.FallbackOp, p.FallbackEngine, p.InputWorlds)
	if len(p.FallbackComponents) > 0 {
		s += fmt.Sprintf("; entangled components %v", p.FallbackComponents)
	}
	if len(p.FallbackRelations) > 0 {
		s += fmt.Sprintf(" over relations %v", p.FallbackRelations)
	}
	return s
}

// entangleError is the internal signal that an operator's result cannot
// be expressed in the additive factored form without merging more
// component choices than the budget allows. It carries the coupled
// component ids and the relation names they range over, so fallback
// diagnostics name the culprits instead of a bare operator.
type entangleError struct {
	op     string
	comps  []int
	rels   []string
	cost   *big.Int // merge cost; nil when the operator cannot merge at all
	budget int
}

func (e *entangleError) Error() string {
	msg := fmt.Sprintf("wsdexec: %s entangles decomposition components", e.op)
	if len(e.comps) > 0 {
		msg += fmt.Sprintf(" %v", e.comps)
	}
	if len(e.rels) > 0 {
		msg += fmt.Sprintf(" (relations %v)", e.rels)
	}
	if e.cost != nil {
		msg += fmt.Sprintf("; merge cost %s exceeds expand budget %d", e.cost, e.budget)
	}
	return msg
}

// Eval evaluates q over the decomposition and returns the decomposition
// extended with the answer relation (named "$ans", like the other
// engines), plus the Plan describing how it ran.
func Eval(q wsa.Expr, db *wsd.DecompDB) (*wsd.DecompDB, *Plan, error) {
	return EvalOpts(q, db, nil)
}

// EvalOpts is Eval with explicit options.
func EvalOpts(q wsa.Expr, db *wsd.DecompDB, opt *Options) (*wsd.DecompDB, *Plan, error) {
	env := wsa.NewEnv(db.Names, db.Schemas)
	if _, err := q.Schema(env); err != nil {
		return nil, nil, err
	}
	if n := wsa.MaxParam(q); n > 0 {
		// A plan with parameter slots is a prepared-statement template;
		// only its bound copies (wsa.BindParams) evaluate.
		return nil, nil, fmt.Errorf("wsdexec: plan holds unbound parameter $%d (bind it before evaluation)", n)
	}
	plan := &Plan{InputWorlds: db.Worlds(), MergeCost: 1}
	var trace *obs.Span
	if opt != nil {
		trace = opt.Trace
	}
	// The decomposition statistics seed both the rewrite search's cost
	// model and the product-chain ordering; Normalize pre-computed them,
	// so this is a cache read, not a scan.
	st := rewrite.StatsOf(db)
	run := q
	if opt == nil || !opt.NoRewrite {
		rw := trace.Child("rewrite.prelower")
		if r := rewrite.PrelowerStats(q, env, st, &plan.Search); !wsa.Equal(r, q) {
			run, plan.Rewritten = r, true
		}
		rw.Set("rewritten", fmt.Sprintf("%v", plan.Rewritten)).
			SetInt("expanded", int64(plan.Search.Expanded)).
			SetInt("pruned", int64(plan.Search.Pruned)).End()
	}
	if opt == nil || !opt.NoReorder {
		if r := reorderProducts(run, st, env); !wsa.Equal(r, run) {
			run, plan.Reordered = r, true
		}
	}
	e := &engine{db: db, env: env, st: st, budget: opt.budget(),
		inWorlds: plan.InputWorlds, slaved: map[int]slaveRef{}, trace: trace}
	if opt != nil {
		e.shards = opt.Shards
		e.noMerge = opt.NoMerge
	}
	for _, c := range db.Components {
		e.arity = append(e.arity, len(c.Alternatives))
	}
	var ans *frel
	var err error
	if opt != nil && opt.AssumeFallback != "" {
		err = &entangleError{op: opt.AssumeFallback}
	} else {
		ans, err = e.eval(run)
	}
	if err == nil {
		plan.Native = true
		plan.Merges = e.merges
		for _, m := range e.merges {
			if m.Cost > plan.MergeCost {
				plan.MergeCost = m.Cost
			}
		}
		for ci := len(db.Components); ci < len(e.arity); ci++ {
			if _, slaved := e.slaved[ci]; !slaved {
				plan.NewComponents++
			}
		}
		for ci := range db.Components {
			if _, slaved := e.slaved[ci]; slaved {
				plan.NewComponents--
			}
		}
		return e.buildOutput(ans), plan, nil
	}
	var ent *entangleError
	if !errors.As(err, &ent) {
		return nil, nil, err
	}
	plan.FallbackComponents = ent.comps
	plan.FallbackRelations = ent.rels
	if opt != nil && opt.NoFallback {
		return nil, nil, fmt.Errorf("wsdexec: fallback disabled: %w", err)
	}
	// Fallback: enumerate within budget and delegate to the fastest
	// engine that can run the query.
	plan.FallbackOp = ent.op
	fb := trace.Child("fallback").Set("op", ent.op)
	if len(ent.comps) > 0 {
		fb.Set("components", fmt.Sprintf("%v", ent.comps))
	}
	defer fb.End()
	xp := fb.Child("expand")
	ws, xerr := db.Expand(opt.budget())
	xp.End()
	if xerr != nil {
		return nil, nil, fmt.Errorf("wsdexec: %v; the input is not enumerable: %w", ent, xerr)
	}
	// The rewritten form is equivalent and often cheaper (Prelower may
	// have eliminated the very repair-by-key that would force the
	// reference engine), so the fallback evaluates it, not q.
	var out *worldset.WorldSet
	if physical.CanEval(run) {
		plan.FallbackEngine = "physical"
		out, err = physical.EvalWorldSet(run, ws)
	} else {
		plan.FallbackEngine = "reference"
		out, err = wsa.Eval(run, ws)
	}
	fb.Set("engine", plan.FallbackEngine)
	if err != nil {
		return nil, nil, err
	}
	// Re-factorize the enumerated output so one entangled step does not
	// permanently de-factorize a pipeline: downstream statements keep
	// paying decomposition-size costs, not world-count costs.
	rf := fb.Child("refactor")
	re, err := wsd.Refactor(out)
	rf.End()
	if err != nil {
		return nil, nil, err
	}
	return re, plan, nil
}

// EvalWorldSet is the world-set-level entry point registered as the
// "wsdexec" engine: it lifts the world-set into decomposition space via
// wsd.Refactor (all-certain for complete databases, genuinely factored
// whenever the world-set is a product of independent choices),
// evaluates, and expands the result. It is directly comparable with
// wsa.Eval.
func EvalWorldSet(q wsa.Expr, ws *worldset.WorldSet) (*worldset.WorldSet, error) {
	db, err := wsd.Refactor(ws)
	if err != nil {
		return nil, err
	}
	out, _, err := Eval(q, db)
	if err != nil {
		return nil, err
	}
	return out.Expand(0)
}

// slaveRef records that a component was absorbed into a merged root:
// the root's choice m selects this component's alternative altMap[m].
// The maps compose at merge time (path compression), so a slaved entry
// always points at a live root directly.
type slaveRef struct {
	root   int
	altMap []int
}

// engine carries the evaluation state: the input decomposition and the
// component universe (the input's components plus those created by
// choice-of, repair-by-key and bounded merging, identified by index
// into arity), plus the slaved-component registry of performed merges.
type engine struct {
	db       *wsd.DecompDB
	env      *wsa.Env
	st       rewrite.Stats // planner statistics of db (cardinality attrs on trace spans)
	arity    []int
	budget   int
	inWorlds *big.Int // input world count: the fallback's enumeration cost estimate
	noMerge  bool     // strictly disable merging (differential ablation arm)
	shards   []int    // component index -> home shard (Options.Shards); nil when unsharded
	slaved   map[int]slaveRef
	merges   []MergeStep
	trace    *obs.Span // current operator span; nil = tracing off
}

// addComponent registers a fresh component with n alternatives and
// returns its id.
func (e *engine) addComponent(n int) int {
	e.arity = append(e.arity, n)
	return len(e.arity) - 1
}

// liveComps maps each component id through the slaved registry to its
// current root and returns the sorted distinct set.
func (e *engine) liveComps(ids []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range ids {
		if ref, ok := e.slaved[c]; ok {
			c = ref.root
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// mergeCostBig returns the product of the components' alternative
// counts: the arity of the component merge would build.
func (e *engine) mergeCostBig(comps []int) *big.Int {
	n := big.NewInt(1)
	var m big.Int
	for _, c := range comps {
		n.Mul(n, m.SetInt64(int64(e.arity[c])))
	}
	return n
}

// compRelNames names what the given components range over: the
// relations their alternatives contribute tuples to for input
// components, "derived" for components created during evaluation
// (choice-of, repair-by-key, earlier merges). Used by entanglement
// diagnostics.
func (e *engine) compRelNames(comps []int) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, c := range comps {
		if c >= len(e.db.Components) {
			add("derived")
			continue
		}
		ris := map[int]bool{}
		for _, a := range e.db.Components[c].Alternatives {
			for ri, r := range a.Rels {
				if r != nil && r.Len() > 0 {
					ris[ri] = true
				}
			}
		}
		for ri := range ris {
			add(e.db.Names[ri])
		}
	}
	sort.Strings(out)
	return out
}

// merge collapses the given live components (sorted, at least two) into
// a fresh component whose alternatives enumerate their choice
// combinations in the wsd.MergeComponents mixed-radix layout, recording
// the members as slaved to the new root. It fails with a detailed
// entangleError when the combined alternative count exceeds the
// expansion budget — the caller propagates it and the top level falls
// back to enumeration.
// mergeHeadroom stretches the expansion budget for the cost-based
// merge-vs-fallback decision: a merge up to mergeHeadroom× the budget
// is still taken when it is strictly cheaper than what the fallback
// would do — enumerating the whole input world-set. The budget alone
// caps what the fallback's Expand may materialize; the merge only
// materializes the coupled components' combinations.
const mergeHeadroom = 4

// mergeOK decides merge versus fallback: within budget always merge
// (the pre-stats rule); beyond it, merge anyway when the cost stays
// within the headroom and undercuts the input world count — the
// fallback's enumeration cost — because collapsing just the dependent
// region is then strictly less work than expanding everything (and the
// fallback may not even be feasible). NoMerge refuses outright.
func (e *engine) mergeOK(cost *big.Int) bool {
	if e.noMerge || !cost.IsInt64() {
		return false
	}
	if cost.Int64() <= int64(e.budget) {
		return true
	}
	return cost.Int64() <= int64(e.budget)*mergeHeadroom && cost.Cmp(e.inWorlds) < 0
}

func (e *engine) merge(op string, comps []int) (int, error) {
	cost := e.mergeCostBig(comps)
	if !e.mergeOK(cost) {
		return 0, &entangleError{
			op:     op,
			comps:  append([]int{}, comps...),
			rels:   e.compRelNames(comps),
			cost:   cost,
			budget: e.budget,
		}
	}
	n := int(cost.Int64())
	arities := make([]int, len(comps))
	for k, c := range comps {
		arities[k] = e.arity[c]
	}
	root := e.addComponent(n)
	members := map[int]bool{}
	for k, c := range comps {
		am := make([]int, n)
		for m := 0; m < n; m++ {
			am[m] = wsd.MergeAlt(arities, k, m)
		}
		e.slaved[c] = slaveRef{root: root, altMap: am}
		members[c] = true
	}
	// Path-compress: components previously slaved to a member now chain
	// through it; rewrite them to point at the new root directly.
	for id, ref := range e.slaved {
		if !members[ref.root] {
			continue
		}
		inner := e.slaved[ref.root]
		nm := make([]int, n)
		for m := 0; m < n; m++ {
			nm[m] = ref.altMap[inner.altMap[m]]
		}
		e.slaved[id] = slaveRef{root: root, altMap: nm}
	}
	e.merges = append(e.merges, MergeStep{Op: op, Components: append([]int{}, comps...), Cost: n})
	e.trace.Event("merge").Set("op", op).
		Set("components", fmt.Sprintf("%v", comps)).SetInt("cost", int64(n))
	return root, nil
}

// promote rewrites f in place so that no part is keyed on a slaved
// component: parts of merged members are folded onto the corresponding
// alternatives of their root. Component-interpreting operators call it
// on every operand before inspecting uncertainComps or per-alternative
// coverage — a merge performed while evaluating a sibling subtree may
// have slaved components an already-evaluated frel still references,
// and treating two slaved siblings as independent would misjudge
// certainty. Structural operators (σ, π, ρ, ∪) need not promote: they
// distribute over parts regardless of which component keys them.
func (e *engine) promote(f *frel) {
	if len(e.slaved) == 0 {
		return
	}
	for _, c := range f.compIDs() {
		ref, ok := e.slaved[c]
		if !ok {
			continue
		}
		parts := f.parts[c]
		delete(f.parts, c)
		n := e.arity[ref.root]
		for m := 0; m < n; m++ {
			p := parts[ref.altMap[m]]
			if p == nil || p.Len() == 0 {
				continue
			}
			slot := f.slot(ref.root, n, m)
			p.Each(func(t relation.Tuple) { slot.Insert(t) })
		}
	}
}

// buildOutput assembles the extended decomposition ⟨R1, …, Rk, $ans⟩
// from the input and the answer's factored form. Components slaved to a
// merge root are omitted: the root's alternatives re-emit their
// relation contributions at the member alternative each combined choice
// selects, so the output represents exactly the input world-set (merged
// combinations may coincide in content, making Worlds an upper bound —
// the Normalize caveat; Expand still deduplicates).
func (e *engine) buildOutput(ans *frel) *wsd.DecompDB {
	e.promote(ans)
	k := len(e.db.Names)
	out := &wsd.DecompDB{
		Names:   append(append([]string{}, e.db.Names...), wsa.AnswerName),
		Schemas: append(append([]relation.Schema{}, e.db.Schemas...), ans.schema),
		Certain: append(append([]*relation.Relation{}, e.db.Certain...), ans.cert),
	}
	// Input components absorbed by each merge root, for re-emitting
	// their relation contributions under the root's combined choices.
	members := map[int][]int{}
	for id, ref := range e.slaved {
		if id < len(e.db.Components) {
			members[ref.root] = append(members[ref.root], id)
		}
	}
	for _, ms := range members {
		sort.Ints(ms)
	}
	for ci, m := range e.arity {
		if _, slaved := e.slaved[ci]; slaved {
			continue
		}
		comp := wsd.DBComponent{Alternatives: make([]wsd.DBAlternative, m)}
		for a := 0; a < m; a++ {
			alt := wsd.DBAlternative{Rels: map[int]*relation.Relation{}}
			if ci < len(e.db.Components) {
				for ri, r := range e.db.Components[ci].Alternatives[a].Rels {
					alt.Rels[ri] = r
				}
			}
			for _, b := range members[ci] {
				ref := e.slaved[b]
				for ri, r := range e.db.Components[b].Alternatives[ref.altMap[a]].Rels {
					if r == nil || r.Len() == 0 {
						continue
					}
					if cur := alt.Rels[ri]; cur == nil {
						alt.Rels[ri] = r
					} else {
						u := cur.Clone()
						r.Each(func(t relation.Tuple) { u.Insert(t) })
						alt.Rels[ri] = u
					}
				}
			}
			if p := ans.part(ci, a); p != nil && p.Len() > 0 {
				alt.Rels[k] = p
			}
			comp.Alternatives[a] = alt
		}
		out.Components = append(out.Components, comp)
	}
	return out
}

// opName names an operator for trace spans and diagnostics.
func opName(q wsa.Expr) string {
	switch n := q.(type) {
	case *wsa.Rel:
		return "rel:" + n.Name
	case *wsa.Select:
		return "select"
	case *wsa.Project:
		return "project"
	case *wsa.Rename:
		return "rename"
	case *wsa.BinOp:
		switch n.Kind {
		case wsa.OpProduct:
			return "product"
		case wsa.OpUnion:
			return "union"
		case wsa.OpIntersect:
			return "intersect"
		case wsa.OpDiff:
			return "diff"
		}
		return "binop"
	case *wsa.Join:
		return "join"
	case *wsa.Choice:
		return "choice-of"
	case *wsa.Close:
		if n.Kind == wsa.ClosePoss {
			return "poss"
		}
		return "cert"
	case *wsa.Group:
		if n.Kind == wsa.GroupPoss {
			return "group-poss"
		}
		return "group-cert"
	case *wsa.RepairKey:
		return "repair-by-key"
	}
	return fmt.Sprintf("%T", q)
}

// eval wraps the recursive evaluator with per-operator tracing: when a
// trace is attached, each operator gets a child span annotated with the
// components its factored result ranges over; merges performed inside
// the operator land as events on its span. The nil-trace path is one
// pointer test on top of evalNode.
func (e *engine) eval(q wsa.Expr) (*frel, error) {
	if e.trace == nil {
		return e.evalNode(q)
	}
	parent := e.trace
	sp := parent.Child("op:" + opName(q))
	e.trace = sp
	out, err := e.evalNode(q)
	e.trace = parent
	if err == nil && out != nil {
		comps := 0
		for range out.parts {
			comps++
		}
		sp.SetInt("components", int64(comps))
		// Estimated versus actual cardinality, for EXPLAIN ANALYZE's
		// plan-quality readout: est_rows is the planner's per-world
		// estimate, rows the stored tuples across the factored pieces.
		sp.Set("est_rows", fmt.Sprintf("%.0f", rewrite.EstimateCard(q, e.st)))
		sp.SetInt("rows", int64(out.size()))
	}
	sp.End()
	return out, err
}

// evalNode is the recursive factored evaluator; every case returns the
// answer as an frel over the engine's component universe.
func (e *engine) evalNode(q wsa.Expr) (*frel, error) {
	outSchema, err := q.Schema(e.env)
	if err != nil {
		return nil, err
	}

	switch n := q.(type) {
	case *wsa.Rel:
		i := e.db.IndexOf(n.Name)
		if i < 0 {
			return nil, fmt.Errorf("wsdexec: unknown relation %q", n.Name)
		}
		out := &frel{schema: outSchema, cert: e.db.Certain[i], parts: map[int][]*relation.Relation{}}
		for ci, c := range e.db.Components {
			for a, alt := range c.Alternatives {
				if r := alt.Rel(i); r != nil && r.Len() > 0 {
					out.setPart(ci, e.arity[ci], a, r)
				}
			}
		}
		return out, nil

	case *wsa.Select:
		// Every piece of a factored relation shares one schema, so the
		// predicate compiles once (attribute resolution is string-heavy)
		// and the compiled filter maps over the pieces.
		return e.mapUnaryPrep(n.From, outSchema, func(s relation.Schema) (func(*relation.Relation) (*relation.Relation, error), error) {
			pred, err := n.Pred.Compile(s)
			if err != nil {
				return nil, err
			}
			return func(r *relation.Relation) (*relation.Relation, error) {
				if !r.Schema().Equal(s) { // defensive: piece with a divergent schema
					return (&ra.Select{Pred: n.Pred, From: &ra.Lit{Rel: r}}).Eval(nil)
				}
				out := relation.New(r.Schema())
				r.Each(func(t relation.Tuple) {
					if pred(t) {
						out.Insert(t)
					}
				})
				return out, nil
			}, nil
		})

	case *wsa.Project:
		return e.mapUnary(n.From, outSchema, func(r *relation.Relation) (*relation.Relation, error) {
			return ra.ProjectNames(&ra.Lit{Rel: r}, n.Columns...).Eval(nil)
		})

	case *wsa.Rename:
		return e.mapUnary(n.From, outSchema, func(r *relation.Relation) (*relation.Relation, error) {
			return (&ra.Rename{Pairs: n.Pairs, From: &ra.Lit{Rel: r}}).Eval(nil)
		})

	case *wsa.BinOp:
		switch n.Kind {
		case wsa.OpProduct:
			return e.evalProduct(n.L, n.R, ra.True{}, outSchema)
		case wsa.OpUnion:
			return e.evalUnion(n.L, n.R, outSchema)
		case wsa.OpIntersect, wsa.OpDiff:
			return e.evalSetOp(n.Kind, n.L, n.R, outSchema)
		}
		return nil, fmt.Errorf("wsdexec: unknown binary operator %v", n.Kind)

	case *wsa.Join:
		return e.evalProduct(n.L, n.R, n.Pred, outSchema)

	case *wsa.Choice:
		return e.evalChoice(n, outSchema)

	case *wsa.Close:
		return e.evalClose(n, outSchema)

	case *wsa.Group:
		return e.evalGroup(n, outSchema)

	case *wsa.RepairKey:
		return e.evalRepair(n, outSchema)
	}
	return nil, fmt.Errorf("wsdexec: unknown operator %T", q)
}

// mapUnary evaluates the subquery and maps fn over every piece of its
// factored form — selections, projections and renames distribute over
// the union defining the represented instances. Pieces map in parallel
// on the shared worker pool; results land in per-slot output cells, so
// the merge is deterministic regardless of scheduling.
func (e *engine) mapUnary(from wsa.Expr, outSchema relation.Schema,
	fn func(*relation.Relation) (*relation.Relation, error)) (*frel, error) {
	return e.mapUnaryPrep(from, outSchema,
		func(relation.Schema) (func(*relation.Relation) (*relation.Relation, error), error) {
			return fn, nil
		})
}

// mapUnaryPrep is mapUnary with a preparation hook: prep sees the input
// schema once — shared by every piece of the factored relation — and
// returns the per-piece function, letting operators hoist
// schema-dependent compilation (predicate resolution, column indexes)
// out of the piece loop.
func (e *engine) mapUnaryPrep(from wsa.Expr, outSchema relation.Schema,
	prep func(relation.Schema) (func(*relation.Relation) (*relation.Relation, error), error)) (*frel, error) {
	sub, err := e.eval(from)
	if err != nil {
		return nil, err
	}
	fn, err := prep(sub.schema)
	if err != nil {
		return nil, err
	}
	type slot struct {
		c, a int
		in   *relation.Relation
	}
	slots := []slot{{-1, -1, sub.cert}}
	for _, c := range sub.compIDs() {
		for a, p := range sub.parts[c] {
			if p != nil && p.Len() > 0 {
				slots = append(slots, slot{c, a, p})
			}
		}
	}
	if sh := e.shards; sh != nil && len(slots) > 2 {
		// Scatter: group the per-piece work units by the owning shard so
		// parallel chunks align with catalog shards. Stable, and results
		// gather into per-slot cells, so the answer is order-independent.
		sort.SliceStable(slots[1:], func(i, j int) bool {
			a, b := slots[1+i].c, slots[1+j].c
			sa, sb := 0, 0
			if a >= 0 && a < len(sh) {
				sa = sh[a]
			}
			if b >= 0 && b < len(sh) {
				sb = sh[b]
			}
			return sa < sb
		})
	}
	results := make([]*relation.Relation, len(slots))
	errs := make([]error, len(slots))
	relation.ParallelChunks(len(slots), relation.NumParts(sub.size()), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i], errs[i] = fn(slots[i].in)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &frel{schema: outSchema, cert: results[0], parts: map[int][]*relation.Relation{}}
	for i := 1; i < len(slots); i++ {
		out.setPart(slots[i].c, e.arity[slots[i].c], slots[i].a, results[i])
	}
	return out, nil
}

// evalUnion merges the factored forms piecewise: the union of two
// additive representations is additive.
func (e *engine) evalUnion(lq, rq wsa.Expr, outSchema relation.Schema) (*frel, error) {
	lf, err := e.eval(lq)
	if err != nil {
		return nil, err
	}
	rf, err := e.eval(rq)
	if err != nil {
		return nil, err
	}
	out := newFrel(outSchema)
	insertAll := func(dst, src *relation.Relation) {
		if src != nil {
			src.Each(func(t relation.Tuple) { dst.Insert(t) })
		}
	}
	insertAll(out.cert, lf.cert)
	insertAll(out.cert, rf.cert)
	for _, f := range []*frel{lf, rf} {
		for _, c := range f.compIDs() {
			for a, p := range f.parts[c] {
				if p != nil && p.Len() > 0 {
					insertAll(out.slot(c, e.arity[c], a), p)
				}
			}
		}
	}
	return out, nil
}

// evalProduct distributes the product over the factored forms:
//
//	(C₁ ∪ U₁) × (C₂ ∪ U₂) = C₁×C₂ ∪ C₁×U₂ ∪ U₁×C₂ ∪ U₁×U₂
//
// The first three terms stay additive (certain×part attaches to the
// part's alternative); the U₁×U₂ cross term is additive only when both
// sides' uncertainty lives in the same component (the alternatives'
// contributions pair up choice-for-choice). Parts in distinct
// components would couple two independent choices — entangled. All
// pairings go through the ra join machinery, so equality predicates use
// the cached hash indexes of relation.IndexOn.
func (e *engine) evalProduct(lq, rq wsa.Expr, pred ra.Pred, outSchema relation.Schema) (*frel, error) {
	lf, err := e.eval(lq)
	if err != nil {
		return nil, err
	}
	rf, err := e.eval(rq)
	if err != nil {
		return nil, err
	}
	e.promote(lf)
	e.promote(rf)
	lu, ru := lf.uncertainComps(), rf.uncertainComps()
	if len(lu) > 0 && len(ru) > 0 && !(len(lu) == 1 && len(ru) == 1 && lu[0] == ru[0]) {
		// Entangled: merge exactly the coupled components, promote both
		// operands onto the merged root, and continue on the
		// same-component path.
		if _, err := e.merge("product of subqueries uncertain in distinct components",
			e.liveComps(append(append([]int{}, lu...), ru...))); err != nil {
			return nil, err
		}
		e.promote(lf)
		e.promote(rf)
		lu, ru = lf.uncertainComps(), rf.uncertainComps()
	}
	combine := func(a, b *relation.Relation) (*relation.Relation, error) {
		if a == nil || b == nil || a.Len() == 0 || b.Len() == 0 {
			return nil, nil
		}
		le, re := &ra.Lit{Rel: a}, &ra.Lit{Rel: b}
		if _, isTrue := pred.(ra.True); isTrue {
			return (&ra.Product{L: le, R: re}).Eval(nil)
		}
		return (&ra.Join{L: le, R: re, Pred: pred}).Eval(nil)
	}
	out := newFrel(outSchema)
	cert, err := combine(lf.cert, rf.cert)
	if err != nil {
		return nil, err
	}
	if cert != nil {
		out.cert = cert
	}
	// Per (component, alternative): certL×partR ∪ partL×certR ∪
	// partL×partR, computed in parallel across slots.
	comps := append(append([]int{}, lu...), ru...)
	sort.Ints(comps)
	comps = dedupInts(comps)
	type slot struct{ c, a int }
	var slots []slot
	for _, c := range comps {
		for a := 0; a < e.arity[c]; a++ {
			slots = append(slots, slot{c, a})
		}
	}
	results := make([]*relation.Relation, len(slots))
	errs := make([]error, len(slots))
	relation.ParallelChunks(len(slots), relation.NumParts(lf.size()+rf.size()), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c, a := slots[i].c, slots[i].a
			acc := relation.New(outSchema)
			for _, pair := range [][2]*relation.Relation{
				{lf.part(c, a), rf.cert},
				{lf.cert, rf.part(c, a)},
				{lf.part(c, a), rf.part(c, a)},
			} {
				r, err := combine(pair[0], pair[1])
				if err != nil {
					errs[i] = err
					return
				}
				if r != nil {
					r.Each(func(t relation.Tuple) { acc.Insert(t) })
				}
			}
			results[i] = acc
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, s := range slots {
		if results[i] != nil && results[i].Len() > 0 {
			out.setPart(s.c, e.arity[s.c], s.a, results[i])
		}
	}
	return out, nil
}

// cond accumulates one tuple's presence conditions on both operands of
// a set operation: certain membership plus, per side, the set of
// (component, alternative) choices that contribute it.
type cond struct {
	t     relation.Tuple
	cert  [2]bool
	comps [2]map[int]map[int]bool
}

// evalSetOp implements intersection and difference by combining
// per-tuple presence conditions. A condition is TRUE (certain, or
// covered by every alternative of some component) or a disjunction of
// choices within components. Conjunctions — t ∈ L ∧ t ∈ R for
// intersection, t ∈ L ∧ t ∉ R for difference — stay additive when at
// most one side is uncertain for the tuple, or both sides' conditions
// live in the same single component; otherwise the tuple's presence
// couples two independent choices and the operator entangles.
func (e *engine) evalSetOp(kind wsa.BinOpKind, lq, rq wsa.Expr, outSchema relation.Schema) (*frel, error) {
	lf, err := e.eval(lq)
	if err != nil {
		return nil, err
	}
	rf, err := e.eval(rq)
	if err != nil {
		return nil, err
	}
	opName := "intersection of subqueries uncertain in distinct components"
	if kind == wsa.OpDiff {
		opName = "difference of subqueries uncertain in distinct components"
	}
	// Tuples whose presence condition couples several components are
	// resolved by merging exactly those components and re-running the
	// combination; every round with entangled tuples merges at least
	// two live components, so the loop terminates.
	for {
		e.promote(lf)
		e.promote(rf)
		out, needs := e.combineSetOp(kind, lf, rf, outSchema)
		if len(needs) == 0 {
			return out, nil
		}
		if err := e.mergeCoupled(opName, needs); err != nil {
			return nil, err
		}
	}
}

// combineSetOp runs one pass of the per-tuple condition combination for
// ∩ and −. It returns the combined frel when every tuple stayed
// additive; otherwise it returns the coupled component sets (needs)
// that blocked additivity, for the caller to merge and retry. Every
// entangled tuple's coupling is collected — rather than aborting at the
// first — so the merges chosen are independent of map iteration order.
func (e *engine) combineSetOp(kind wsa.BinOpKind, lf, rf *frel, outSchema relation.Schema) (*frel, [][]int) {
	// Accumulate conditions per distinct tuple (positional comparison,
	// like ra's set operators), collision-verified.
	buckets := map[uint64][]*cond{}
	get := func(t relation.Tuple) *cond {
		h := t.Hash()
		for _, c := range buckets[h] {
			if c.t.Equal(t) {
				return c
			}
		}
		c := &cond{t: t}
		buckets[h] = append(buckets[h], c)
		return c
	}
	for side, f := range []*frel{lf, rf} {
		side := side
		f.cert.Each(func(t relation.Tuple) { get(t).cert[side] = true })
		for _, ci := range f.compIDs() {
			for a, p := range f.parts[ci] {
				if p == nil {
					continue
				}
				a := a
				p.Each(func(t relation.Tuple) {
					c := get(t)
					if c.comps[side] == nil {
						c.comps[side] = map[int]map[int]bool{}
					}
					if c.comps[side][ci] == nil {
						c.comps[side][ci] = map[int]bool{}
					}
					c.comps[side][ci][a] = true
				})
			}
		}
	}
	// isTrue reports a condition equivalent to TRUE: certain, or some
	// component contributes the tuple under every alternative.
	isTrue := func(c *cond, side int) bool {
		if c.cert[side] {
			return true
		}
		for ci, alts := range c.comps[side] {
			if len(alts) == e.arity[ci] && e.arity[ci] > 0 {
				return true
			}
		}
		return false
	}
	singleComp := func(c *cond, side int) (int, bool) {
		if len(c.comps[side]) != 1 {
			return 0, false
		}
		for ci := range c.comps[side] {
			return ci, true
		}
		return 0, false
	}
	out := newFrel(outSchema)
	copyMemberships := func(t relation.Tuple, m map[int]map[int]bool) {
		for ci, alts := range m {
			for a := range alts {
				out.slot(ci, e.arity[ci], a).Insert(t)
			}
		}
	}
	var needs [][]int
	couple := func(ms ...map[int]map[int]bool) {
		var ids []int
		for _, m := range ms {
			for ci := range m {
				ids = append(ids, ci)
			}
		}
		needs = append(needs, ids)
	}
	for _, bucket := range buckets {
		for _, c := range bucket {
			presentL := c.cert[0] || len(c.comps[0]) > 0
			presentR := c.cert[1] || len(c.comps[1]) > 0
			if kind == wsa.OpIntersect {
				if !presentL || !presentR {
					continue
				}
				lTrue, rTrue := isTrue(c, 0), isTrue(c, 1)
				switch {
				case lTrue && rTrue:
					out.cert.Insert(c.t)
				case lTrue:
					copyMemberships(c.t, c.comps[1])
				case rTrue:
					copyMemberships(c.t, c.comps[0])
				default:
					lc, lok := singleComp(c, 0)
					rc, rok := singleComp(c, 1)
					if !lok || !rok || lc != rc {
						couple(c.comps[0], c.comps[1])
						break
					}
					for a := range c.comps[0][lc] {
						if c.comps[1][rc][a] {
							out.slot(lc, e.arity[lc], a).Insert(c.t)
						}
					}
				}
				continue
			}
			// Difference L − R.
			if !presentL {
				continue
			}
			if isTrue(c, 1) {
				continue // always in R, never in the difference
			}
			if !presentR {
				if isTrue(c, 0) {
					out.cert.Insert(c.t)
				} else {
					copyMemberships(c.t, c.comps[0])
				}
				continue
			}
			// R is strictly uncertain: ¬R is a conjunction across R's
			// components, additive only within a single one. When L is
			// TRUE only R's components need merging; otherwise the
			// conjunction couples both sides' components.
			rc, rok := singleComp(c, 1)
			if !rok {
				if isTrue(c, 0) {
					couple(c.comps[1])
				} else {
					couple(c.comps[0], c.comps[1])
				}
				continue
			}
			switch {
			case isTrue(c, 0):
				for a := 0; a < e.arity[rc]; a++ {
					if !c.comps[1][rc][a] {
						out.slot(rc, e.arity[rc], a).Insert(c.t)
					}
				}
			default:
				lc, lok := singleComp(c, 0)
				if !lok || lc != rc {
					couple(c.comps[0], c.comps[1])
				} else {
					for a := range c.comps[0][lc] {
						if !c.comps[1][rc][a] {
							out.slot(lc, e.arity[lc], a).Insert(c.t)
						}
					}
				}
			}
		}
	}
	if len(needs) > 0 {
		return nil, needs
	}
	return out, nil
}

// mergeCoupled resolves the coupled component sets to live roots,
// groups overlapping sets into connected groups (they must merge
// together), and performs one merge per group, smallest member first.
func (e *engine) mergeCoupled(op string, needs [][]int) error {
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, set := range needs {
		live := e.liveComps(set)
		for _, c := range live {
			if _, ok := parent[c]; !ok {
				parent[c] = c
			}
		}
		for _, c := range live[1:] {
			parent[find(live[0])] = find(c)
		}
	}
	groups := map[int][]int{}
	for x := range parent {
		r := find(x)
		groups[r] = append(groups[r], x)
	}
	gs := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i][0] < gs[j][0] })
	for _, g := range gs {
		// A singleton group cannot arise: every coupled set spans at
		// least two live components (see combineSetOp's call sites).
		if len(g) < 2 {
			continue
		}
		if _, err := e.merge(op, g); err != nil {
			return err
		}
	}
	return nil
}

// evalChoice implements χ_U. On a certain answer — identical in every
// world — each world branches into one world per distinct U-group:
// exactly a fresh independent component whose alternatives are the
// groups. An uncertain answer would need the new component's refinement
// to stay correlated with existing choices, which the independent
// product cannot express — entangled.
func (e *engine) evalChoice(n *wsa.Choice, outSchema relation.Schema) (*frel, error) {
	sub, err := e.eval(n.From)
	if err != nil {
		return nil, err
	}
	e.promote(sub)
	if uc := sub.uncertainComps(); len(uc) > 0 {
		live := e.liveComps(uc)
		return nil, &entangleError{op: "choice-of over an uncertain answer",
			comps: live, rels: e.compRelNames(live)}
	}
	if sub.cert.Empty() {
		// Empty answer: every world survives with the empty answer.
		return newFrel(outSchema), nil
	}
	idx, err := sub.schema.Indexes(n.Attrs)
	if err != nil {
		return nil, err
	}
	groups := relation.NewGroupMap(idx, sub.cert.Len())
	sub.cert.Each(func(t relation.Tuple) { groups.Add(t) })
	gs := append([]*relation.Group{}, groups.Groups()...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key.Less(gs[j].Key) })
	c := e.addComponent(len(gs))
	out := newFrel(outSchema)
	for a, g := range gs {
		p := relation.New(outSchema)
		for _, t := range g.Rows {
			p.InsertDistinct(t)
		}
		out.setPart(c, len(gs), a, p)
	}
	return out, nil
}

// evalClose implements poss and cert as component-local scans, in
// O(size) regardless of the world count: poss is the union of all
// pieces; a tuple is certain iff it is certain already or some
// component contributes it under every alternative. Components scan in
// parallel into per-component cells; the merge walks them in component
// order.
func (e *engine) evalClose(n *wsa.Close, outSchema relation.Schema) (*frel, error) {
	sub, err := e.eval(n.From)
	if err != nil {
		return nil, err
	}
	// Certainty is judged per component: parts still keyed on merged
	// members must be promoted first, or two correlated members could
	// jointly cover every root alternative without either covering its
	// own, under-approximating cert.
	e.promote(sub)
	comps := sub.compIDs()
	partial := make([]*relation.Relation, len(comps))
	relation.ParallelChunks(len(comps), relation.NumParts(sub.size()), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c := comps[i]
			acc := relation.New(outSchema)
			if n.Kind == wsa.ClosePoss {
				for _, p := range sub.parts[c] {
					if p != nil {
						p.Each(func(t relation.Tuple) { acc.Insert(t) })
					}
				}
			} else {
				// Tuples contributed by every alternative of c.
				alts := sub.parts[c]
				covered := e.arity[c] > 0
				for _, p := range alts {
					if p == nil || p.Len() == 0 {
						covered = false
						break
					}
				}
				if covered {
					alts[0].Each(func(t relation.Tuple) {
						for _, p := range alts[1:] {
							if !p.Contains(t) {
								return
							}
						}
						acc.Insert(t)
					})
				}
			}
			partial[i] = acc
		}
	})
	out := newFrel(outSchema)
	sub.cert.Each(func(t relation.Tuple) { out.cert.Insert(t) })
	for _, acc := range partial {
		acc.Each(func(t relation.Tuple) { out.cert.Insert(t) })
	}
	return out, nil
}

// evalGroup implements pγ^V_U and cγ^V_U. A certain answer puts every
// world in one group whose aggregate is the answer's projection. When
// the answer depends on exactly one component, both the group signature
// and the aggregate are functions of that component's choice: compute
// the signature per alternative, aggregate per signature class, and
// emit the class aggregate as the alternative's part. Answers depending
// on several components entangle.
func (e *engine) evalGroup(n *wsa.Group, outSchema relation.Schema) (*frel, error) {
	sub, err := e.eval(n.From)
	if err != nil {
		return nil, err
	}
	gIdx, err := sub.schema.Indexes(n.GroupBy)
	if err != nil {
		return nil, err
	}
	proj := n.ProjOrAll(sub.schema)
	pIdx, err := sub.schema.Indexes(proj)
	if err != nil {
		return nil, err
	}
	e.promote(sub)
	uc := sub.uncertainComps()
	if len(uc) == 0 {
		out := newFrel(outSchema)
		out.cert = sub.cert.Project(pIdx, outSchema)
		return out, nil
	}
	if len(uc) > 1 {
		// Native multi-component aggregation: merge the components the
		// answer depends on, promote onto the merged root, and run the
		// single-component signature-class aggregation over it.
		if _, err := e.merge("group-worlds-by over an answer uncertain in several components",
			e.liveComps(uc)); err != nil {
			return nil, err
		}
		e.promote(sub)
		uc = sub.uncertainComps()
	}
	c := uc[0]
	m := e.arity[c]
	gSchema := relation.NewSchema(n.GroupBy...)
	sigs := make([]string, m)
	projs := make([]*relation.Relation, m)
	relation.ParallelChunks(m, relation.NumParts(sub.size()), func(_, lo, hi int) {
		for a := lo; a < hi; a++ {
			w := sub.cert.Clone()
			if p := sub.part(c, a); p != nil {
				p.Each(func(t relation.Tuple) { w.Insert(t) })
			}
			sigs[a] = w.Project(gIdx, gSchema).ContentKey()
			projs[a] = w.Project(pIdx, outSchema)
		}
	})
	// Aggregate per signature class, in first-alternative order.
	agg := map[string]*relation.Relation{}
	for a := 0; a < m; a++ {
		cur, ok := agg[sigs[a]]
		if !ok {
			agg[sigs[a]] = projs[a]
			continue
		}
		if n.Kind == wsa.GroupPoss {
			projs[a].Each(func(t relation.Tuple) { cur.Insert(t) })
		} else {
			next := relation.New(outSchema)
			cur.Each(func(t relation.Tuple) {
				if projs[a].Contains(t) {
					next.Insert(t)
				}
			})
			agg[sigs[a]] = next
		}
	}
	out := newFrel(outSchema)
	for a := 0; a < m; a++ {
		out.setPart(c, m, a, agg[sigs[a]])
	}
	return out, nil
}

// evalRepair implements repair-by-key on a certain answer — the §2
// census view: every key group with several candidate tuples becomes a
// fresh independent component with one single-tuple alternative per
// candidate; singleton groups stay certain. The construction is linear
// in the answer and represents ∏ |group| worlds. Uncertain answers
// would need per-world key groups — entangled (the fallback runs the
// reference evaluator, since the physical engine cannot repair).
func (e *engine) evalRepair(n *wsa.RepairKey, outSchema relation.Schema) (*frel, error) {
	sub, err := e.eval(n.From)
	if err != nil {
		return nil, err
	}
	e.promote(sub)
	if uc := sub.uncertainComps(); len(uc) > 0 {
		live := e.liveComps(uc)
		return nil, &entangleError{op: "repair-by-key over an uncertain answer",
			comps: live, rels: e.compRelNames(live)}
	}
	idx, err := sub.schema.Indexes(n.Attrs)
	if err != nil {
		return nil, err
	}
	groups := relation.NewGroupMap(idx, sub.cert.Len())
	sub.cert.Each(func(t relation.Tuple) { groups.Add(t) })
	gs := append([]*relation.Group{}, groups.Groups()...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key.Less(gs[j].Key) })
	out := newFrel(outSchema)
	for _, g := range gs {
		if len(g.Rows) == 1 {
			out.cert.Insert(g.Rows[0])
			continue
		}
		rows := append([]relation.Tuple{}, g.Rows...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].Less(rows[j]) })
		c := e.addComponent(len(rows))
		for a, t := range rows {
			p := relation.New(outSchema)
			p.InsertDistinct(t)
			out.setPart(c, len(rows), a, p)
		}
	}
	return out, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
