// Package wsdexec is the factorized evaluation engine: it evaluates
// World-set Algebra queries directly over a multi-relation world-set
// decomposition (wsd.DecompDB) without ever enumerating the represented
// worlds, making query cost polynomial in the decomposition size —
// independent of the world count. This is the implementation substrate
// the paper's conclusion proposes for I-SQL ("implement I-SQL on top of
// an existing representation system for finite world-sets, like ...
// world-set decompositions"): the §2 census-repair view with 2^40
// repairs answers cert/poss in milliseconds here, where the reference,
// translated and physical engines all pay Ω(#worlds).
//
// # Evaluation
//
// Every subquery evaluates to a factored relation (see frel): certain
// tuples plus per-component, per-alternative extras. Selections,
// projections and renames map over the pieces (component-parallel on
// the worker pool of relation/pool.go, with a slot-deterministic
// merge); unions merge pieces; products hash-join certain and
// alternative partitions through the cached indexes of
// relation.IndexOn; intersections and differences combine per-tuple
// presence conditions; poss and cert are component-local scans;
// choice-of and repair-by-key on certain inputs split fresh components;
// group-worlds-by aggregates per alternative when the answer depends on
// a single component. Before lowering, rewrite.Prelower applies the
// Figure 7 equivalences that are sound on arbitrary world-sets, which
// eliminates many group-worlds-by/choice-of operators outright.
//
// # Fallback
//
// Operators whose result would couple the choices of two distinct
// components — a product of two uncertain subqueries living in
// different components, choice-of over an uncertain answer — cannot be
// expressed in the additive factored form. For those the engine
// enumerates the input through the guarded wsd Expand (refusing via
// *wsd.BudgetError beyond the budget) and delegates the query to the
// physical engine (or the reference evaluator when the query contains
// repair-by-key, which physical cannot run). The enumerated output is
// re-factorized with wsd.Refactor before it is returned, so downstream
// statements keep working on a decomposition. Every evaluation returns
// a Plan recording whether it stayed native and, if not, which operator
// forced the fallback — benchmarks count those.
package wsdexec

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"worldsetdb/internal/physical"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/rewrite"
	"worldsetdb/internal/worldset"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
)

func init() {
	wsa.RegisterEngine("wsdexec", EvalWorldSet)
}

// Options tune the factorized engine.
type Options struct {
	// ExpandBudget caps world enumeration during fallback (and when
	// expanding world-set-level results); 0 means
	// wsd.DefaultExpandBudget.
	ExpandBudget int
	// NoRewrite disables the pre-lowering rewrite pass
	// (rewrite.Prelower).
	NoRewrite bool
	// NoFallback turns entangling operators into errors instead of
	// enumerating; tests and benchmarks use it to prove evaluations
	// stayed native.
	NoFallback bool
}

func (o *Options) budget() int {
	if o == nil || o.ExpandBudget == 0 {
		return wsd.DefaultExpandBudget
	}
	return o.ExpandBudget
}

// Plan records how a query was evaluated.
type Plan struct {
	// Native reports that the query ran entirely on the decomposition,
	// with no world enumeration.
	Native bool
	// FallbackOp names the operator that entangled components and
	// forced enumeration ("" when Native).
	FallbackOp string
	// FallbackEngine is the engine the query was delegated to
	// ("physical" or "reference"; "" when Native).
	FallbackEngine string
	// InputWorlds is the exact world count of the input decomposition.
	InputWorlds *big.Int
	// NewComponents counts components created by choice-of and
	// repair-by-key during native evaluation.
	NewComponents int
	// Rewritten reports that rewrite.Prelower changed the query before
	// lowering.
	Rewritten bool
}

func (p *Plan) String() string {
	if p.Native {
		return fmt.Sprintf("native (worlds=%s, new components=%d, rewritten=%v)",
			p.InputWorlds, p.NewComponents, p.Rewritten)
	}
	return fmt.Sprintf("fallback at %s via %s engine (worlds=%s)",
		p.FallbackOp, p.FallbackEngine, p.InputWorlds)
}

// entangleError is the internal signal that an operator's result cannot
// be expressed in the additive factored form.
type entangleError struct{ op string }

func (e *entangleError) Error() string {
	return fmt.Sprintf("wsdexec: %s entangles decomposition components", e.op)
}

// Eval evaluates q over the decomposition and returns the decomposition
// extended with the answer relation (named "$ans", like the other
// engines), plus the Plan describing how it ran.
func Eval(q wsa.Expr, db *wsd.DecompDB) (*wsd.DecompDB, *Plan, error) {
	return EvalOpts(q, db, nil)
}

// EvalOpts is Eval with explicit options.
func EvalOpts(q wsa.Expr, db *wsd.DecompDB, opt *Options) (*wsd.DecompDB, *Plan, error) {
	env := wsa.NewEnv(db.Names, db.Schemas)
	if _, err := q.Schema(env); err != nil {
		return nil, nil, err
	}
	if n := wsa.MaxParam(q); n > 0 {
		// A plan with parameter slots is a prepared-statement template;
		// only its bound copies (wsa.BindParams) evaluate.
		return nil, nil, fmt.Errorf("wsdexec: plan holds unbound parameter $%d (bind it before evaluation)", n)
	}
	plan := &Plan{InputWorlds: db.Worlds()}
	run := q
	if opt == nil || !opt.NoRewrite {
		if r := rewrite.Prelower(q, env); !wsa.Equal(r, q) {
			run, plan.Rewritten = r, true
		}
	}
	e := &engine{db: db, env: env}
	for _, c := range db.Components {
		e.arity = append(e.arity, len(c.Alternatives))
	}
	ans, err := e.eval(run)
	if err == nil {
		plan.Native = true
		plan.NewComponents = len(e.arity) - len(db.Components)
		return e.buildOutput(ans), plan, nil
	}
	var ent *entangleError
	if !errors.As(err, &ent) {
		return nil, nil, err
	}
	if opt != nil && opt.NoFallback {
		return nil, nil, fmt.Errorf("wsdexec: fallback disabled: %w", err)
	}
	// Fallback: enumerate within budget and delegate to the fastest
	// engine that can run the query.
	ws, xerr := db.Expand(opt.budget())
	if xerr != nil {
		return nil, nil, fmt.Errorf("wsdexec: %s and the input is not enumerable: %w", ent.op, xerr)
	}
	// The rewritten form is equivalent and often cheaper (Prelower may
	// have eliminated the very repair-by-key that would force the
	// reference engine), so the fallback evaluates it, not q.
	plan.FallbackOp = ent.op
	var out *worldset.WorldSet
	if physical.CanEval(run) {
		plan.FallbackEngine = "physical"
		out, err = physical.EvalWorldSet(run, ws)
	} else {
		plan.FallbackEngine = "reference"
		out, err = wsa.Eval(run, ws)
	}
	if err != nil {
		return nil, nil, err
	}
	// Re-factorize the enumerated output so one entangled step does not
	// permanently de-factorize a pipeline: downstream statements keep
	// paying decomposition-size costs, not world-count costs.
	re, err := wsd.Refactor(out)
	if err != nil {
		return nil, nil, err
	}
	return re, plan, nil
}

// EvalWorldSet is the world-set-level entry point registered as the
// "wsdexec" engine: it lifts the world-set into decomposition space via
// wsd.Refactor (all-certain for complete databases, genuinely factored
// whenever the world-set is a product of independent choices),
// evaluates, and expands the result. It is directly comparable with
// wsa.Eval.
func EvalWorldSet(q wsa.Expr, ws *worldset.WorldSet) (*worldset.WorldSet, error) {
	db, err := wsd.Refactor(ws)
	if err != nil {
		return nil, err
	}
	out, _, err := Eval(q, db)
	if err != nil {
		return nil, err
	}
	return out.Expand(0)
}

// engine carries the evaluation state: the input decomposition and the
// component universe (the input's components plus those created by
// choice-of and repair-by-key, identified by index into arity).
type engine struct {
	db    *wsd.DecompDB
	env   *wsa.Env
	arity []int
}

// addComponent registers a fresh component with n alternatives and
// returns its id.
func (e *engine) addComponent(n int) int {
	e.arity = append(e.arity, n)
	return len(e.arity) - 1
}

// buildOutput assembles the extended decomposition ⟨R1, …, Rk, $ans⟩
// from the input and the answer's factored form.
func (e *engine) buildOutput(ans *frel) *wsd.DecompDB {
	k := len(e.db.Names)
	out := &wsd.DecompDB{
		Names:   append(append([]string{}, e.db.Names...), wsa.AnswerName),
		Schemas: append(append([]relation.Schema{}, e.db.Schemas...), ans.schema),
		Certain: append(append([]*relation.Relation{}, e.db.Certain...), ans.cert),
	}
	for ci, m := range e.arity {
		comp := wsd.DBComponent{Alternatives: make([]wsd.DBAlternative, m)}
		for a := 0; a < m; a++ {
			alt := wsd.DBAlternative{Rels: map[int]*relation.Relation{}}
			if ci < len(e.db.Components) {
				for ri, r := range e.db.Components[ci].Alternatives[a].Rels {
					alt.Rels[ri] = r
				}
			}
			if p := ans.part(ci, a); p != nil && p.Len() > 0 {
				alt.Rels[k] = p
			}
			comp.Alternatives[a] = alt
		}
		out.Components = append(out.Components, comp)
	}
	return out
}

// eval is the recursive factored evaluator; every case returns the
// answer as an frel over the engine's component universe.
func (e *engine) eval(q wsa.Expr) (*frel, error) {
	outSchema, err := q.Schema(e.env)
	if err != nil {
		return nil, err
	}

	switch n := q.(type) {
	case *wsa.Rel:
		i := e.db.IndexOf(n.Name)
		if i < 0 {
			return nil, fmt.Errorf("wsdexec: unknown relation %q", n.Name)
		}
		out := &frel{schema: outSchema, cert: e.db.Certain[i], parts: map[int][]*relation.Relation{}}
		for ci, c := range e.db.Components {
			for a, alt := range c.Alternatives {
				if r := alt.Rel(i); r != nil && r.Len() > 0 {
					out.setPart(ci, e.arity[ci], a, r)
				}
			}
		}
		return out, nil

	case *wsa.Select:
		// Every piece of a factored relation shares one schema, so the
		// predicate compiles once (attribute resolution is string-heavy)
		// and the compiled filter maps over the pieces.
		return e.mapUnaryPrep(n.From, outSchema, func(s relation.Schema) (func(*relation.Relation) (*relation.Relation, error), error) {
			pred, err := n.Pred.Compile(s)
			if err != nil {
				return nil, err
			}
			return func(r *relation.Relation) (*relation.Relation, error) {
				if !r.Schema().Equal(s) { // defensive: piece with a divergent schema
					return (&ra.Select{Pred: n.Pred, From: &ra.Lit{Rel: r}}).Eval(nil)
				}
				out := relation.New(r.Schema())
				r.Each(func(t relation.Tuple) {
					if pred(t) {
						out.Insert(t)
					}
				})
				return out, nil
			}, nil
		})

	case *wsa.Project:
		return e.mapUnary(n.From, outSchema, func(r *relation.Relation) (*relation.Relation, error) {
			return ra.ProjectNames(&ra.Lit{Rel: r}, n.Columns...).Eval(nil)
		})

	case *wsa.Rename:
		return e.mapUnary(n.From, outSchema, func(r *relation.Relation) (*relation.Relation, error) {
			return (&ra.Rename{Pairs: n.Pairs, From: &ra.Lit{Rel: r}}).Eval(nil)
		})

	case *wsa.BinOp:
		switch n.Kind {
		case wsa.OpProduct:
			return e.evalProduct(n.L, n.R, ra.True{}, outSchema)
		case wsa.OpUnion:
			return e.evalUnion(n.L, n.R, outSchema)
		case wsa.OpIntersect, wsa.OpDiff:
			return e.evalSetOp(n.Kind, n.L, n.R, outSchema)
		}
		return nil, fmt.Errorf("wsdexec: unknown binary operator %v", n.Kind)

	case *wsa.Join:
		return e.evalProduct(n.L, n.R, n.Pred, outSchema)

	case *wsa.Choice:
		return e.evalChoice(n, outSchema)

	case *wsa.Close:
		return e.evalClose(n, outSchema)

	case *wsa.Group:
		return e.evalGroup(n, outSchema)

	case *wsa.RepairKey:
		return e.evalRepair(n, outSchema)
	}
	return nil, fmt.Errorf("wsdexec: unknown operator %T", q)
}

// mapUnary evaluates the subquery and maps fn over every piece of its
// factored form — selections, projections and renames distribute over
// the union defining the represented instances. Pieces map in parallel
// on the shared worker pool; results land in per-slot output cells, so
// the merge is deterministic regardless of scheduling.
func (e *engine) mapUnary(from wsa.Expr, outSchema relation.Schema,
	fn func(*relation.Relation) (*relation.Relation, error)) (*frel, error) {
	return e.mapUnaryPrep(from, outSchema,
		func(relation.Schema) (func(*relation.Relation) (*relation.Relation, error), error) {
			return fn, nil
		})
}

// mapUnaryPrep is mapUnary with a preparation hook: prep sees the input
// schema once — shared by every piece of the factored relation — and
// returns the per-piece function, letting operators hoist
// schema-dependent compilation (predicate resolution, column indexes)
// out of the piece loop.
func (e *engine) mapUnaryPrep(from wsa.Expr, outSchema relation.Schema,
	prep func(relation.Schema) (func(*relation.Relation) (*relation.Relation, error), error)) (*frel, error) {
	sub, err := e.eval(from)
	if err != nil {
		return nil, err
	}
	fn, err := prep(sub.schema)
	if err != nil {
		return nil, err
	}
	type slot struct {
		c, a int
		in   *relation.Relation
	}
	slots := []slot{{-1, -1, sub.cert}}
	for _, c := range sub.compIDs() {
		for a, p := range sub.parts[c] {
			if p != nil && p.Len() > 0 {
				slots = append(slots, slot{c, a, p})
			}
		}
	}
	results := make([]*relation.Relation, len(slots))
	errs := make([]error, len(slots))
	relation.ParallelChunks(len(slots), relation.NumParts(sub.size()), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i], errs[i] = fn(slots[i].in)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &frel{schema: outSchema, cert: results[0], parts: map[int][]*relation.Relation{}}
	for i := 1; i < len(slots); i++ {
		out.setPart(slots[i].c, e.arity[slots[i].c], slots[i].a, results[i])
	}
	return out, nil
}

// evalUnion merges the factored forms piecewise: the union of two
// additive representations is additive.
func (e *engine) evalUnion(lq, rq wsa.Expr, outSchema relation.Schema) (*frel, error) {
	lf, err := e.eval(lq)
	if err != nil {
		return nil, err
	}
	rf, err := e.eval(rq)
	if err != nil {
		return nil, err
	}
	out := newFrel(outSchema)
	insertAll := func(dst, src *relation.Relation) {
		if src != nil {
			src.Each(func(t relation.Tuple) { dst.Insert(t) })
		}
	}
	insertAll(out.cert, lf.cert)
	insertAll(out.cert, rf.cert)
	for _, f := range []*frel{lf, rf} {
		for _, c := range f.compIDs() {
			for a, p := range f.parts[c] {
				if p != nil && p.Len() > 0 {
					insertAll(out.slot(c, e.arity[c], a), p)
				}
			}
		}
	}
	return out, nil
}

// evalProduct distributes the product over the factored forms:
//
//	(C₁ ∪ U₁) × (C₂ ∪ U₂) = C₁×C₂ ∪ C₁×U₂ ∪ U₁×C₂ ∪ U₁×U₂
//
// The first three terms stay additive (certain×part attaches to the
// part's alternative); the U₁×U₂ cross term is additive only when both
// sides' uncertainty lives in the same component (the alternatives'
// contributions pair up choice-for-choice). Parts in distinct
// components would couple two independent choices — entangled. All
// pairings go through the ra join machinery, so equality predicates use
// the cached hash indexes of relation.IndexOn.
func (e *engine) evalProduct(lq, rq wsa.Expr, pred ra.Pred, outSchema relation.Schema) (*frel, error) {
	lf, err := e.eval(lq)
	if err != nil {
		return nil, err
	}
	rf, err := e.eval(rq)
	if err != nil {
		return nil, err
	}
	lu, ru := lf.uncertainComps(), rf.uncertainComps()
	if len(lu) > 0 && len(ru) > 0 && !(len(lu) == 1 && len(ru) == 1 && lu[0] == ru[0]) {
		return nil, &entangleError{op: "product of subqueries uncertain in distinct components"}
	}
	combine := func(a, b *relation.Relation) (*relation.Relation, error) {
		if a == nil || b == nil || a.Len() == 0 || b.Len() == 0 {
			return nil, nil
		}
		le, re := &ra.Lit{Rel: a}, &ra.Lit{Rel: b}
		if _, isTrue := pred.(ra.True); isTrue {
			return (&ra.Product{L: le, R: re}).Eval(nil)
		}
		return (&ra.Join{L: le, R: re, Pred: pred}).Eval(nil)
	}
	out := newFrel(outSchema)
	cert, err := combine(lf.cert, rf.cert)
	if err != nil {
		return nil, err
	}
	if cert != nil {
		out.cert = cert
	}
	// Per (component, alternative): certL×partR ∪ partL×certR ∪
	// partL×partR, computed in parallel across slots.
	comps := append(append([]int{}, lu...), ru...)
	sort.Ints(comps)
	comps = dedupInts(comps)
	type slot struct{ c, a int }
	var slots []slot
	for _, c := range comps {
		for a := 0; a < e.arity[c]; a++ {
			slots = append(slots, slot{c, a})
		}
	}
	results := make([]*relation.Relation, len(slots))
	errs := make([]error, len(slots))
	relation.ParallelChunks(len(slots), relation.NumParts(lf.size()+rf.size()), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c, a := slots[i].c, slots[i].a
			acc := relation.New(outSchema)
			for _, pair := range [][2]*relation.Relation{
				{lf.part(c, a), rf.cert},
				{lf.cert, rf.part(c, a)},
				{lf.part(c, a), rf.part(c, a)},
			} {
				r, err := combine(pair[0], pair[1])
				if err != nil {
					errs[i] = err
					return
				}
				if r != nil {
					r.Each(func(t relation.Tuple) { acc.Insert(t) })
				}
			}
			results[i] = acc
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, s := range slots {
		if results[i] != nil && results[i].Len() > 0 {
			out.setPart(s.c, e.arity[s.c], s.a, results[i])
		}
	}
	return out, nil
}

// cond accumulates one tuple's presence conditions on both operands of
// a set operation: certain membership plus, per side, the set of
// (component, alternative) choices that contribute it.
type cond struct {
	t     relation.Tuple
	cert  [2]bool
	comps [2]map[int]map[int]bool
}

// evalSetOp implements intersection and difference by combining
// per-tuple presence conditions. A condition is TRUE (certain, or
// covered by every alternative of some component) or a disjunction of
// choices within components. Conjunctions — t ∈ L ∧ t ∈ R for
// intersection, t ∈ L ∧ t ∉ R for difference — stay additive when at
// most one side is uncertain for the tuple, or both sides' conditions
// live in the same single component; otherwise the tuple's presence
// couples two independent choices and the operator entangles.
func (e *engine) evalSetOp(kind wsa.BinOpKind, lq, rq wsa.Expr, outSchema relation.Schema) (*frel, error) {
	lf, err := e.eval(lq)
	if err != nil {
		return nil, err
	}
	rf, err := e.eval(rq)
	if err != nil {
		return nil, err
	}
	// Accumulate conditions per distinct tuple (positional comparison,
	// like ra's set operators), collision-verified.
	buckets := map[uint64][]*cond{}
	get := func(t relation.Tuple) *cond {
		h := t.Hash()
		for _, c := range buckets[h] {
			if c.t.Equal(t) {
				return c
			}
		}
		c := &cond{t: t}
		buckets[h] = append(buckets[h], c)
		return c
	}
	for side, f := range []*frel{lf, rf} {
		side := side
		f.cert.Each(func(t relation.Tuple) { get(t).cert[side] = true })
		for _, ci := range f.compIDs() {
			for a, p := range f.parts[ci] {
				if p == nil {
					continue
				}
				a := a
				p.Each(func(t relation.Tuple) {
					c := get(t)
					if c.comps[side] == nil {
						c.comps[side] = map[int]map[int]bool{}
					}
					if c.comps[side][ci] == nil {
						c.comps[side][ci] = map[int]bool{}
					}
					c.comps[side][ci][a] = true
				})
			}
		}
	}
	// isTrue reports a condition equivalent to TRUE: certain, or some
	// component contributes the tuple under every alternative.
	isTrue := func(c *cond, side int) bool {
		if c.cert[side] {
			return true
		}
		for ci, alts := range c.comps[side] {
			if len(alts) == e.arity[ci] && e.arity[ci] > 0 {
				return true
			}
		}
		return false
	}
	singleComp := func(c *cond, side int) (int, bool) {
		if len(c.comps[side]) != 1 {
			return 0, false
		}
		for ci := range c.comps[side] {
			return ci, true
		}
		return 0, false
	}
	out := newFrel(outSchema)
	copyMemberships := func(t relation.Tuple, m map[int]map[int]bool) {
		for ci, alts := range m {
			for a := range alts {
				out.slot(ci, e.arity[ci], a).Insert(t)
			}
		}
	}
	var entangled error
	for _, bucket := range buckets {
		for _, c := range bucket {
			if entangled != nil {
				break
			}
			presentL := c.cert[0] || len(c.comps[0]) > 0
			presentR := c.cert[1] || len(c.comps[1]) > 0
			if kind == wsa.OpIntersect {
				if !presentL || !presentR {
					continue
				}
				lTrue, rTrue := isTrue(c, 0), isTrue(c, 1)
				switch {
				case lTrue && rTrue:
					out.cert.Insert(c.t)
				case lTrue:
					copyMemberships(c.t, c.comps[1])
				case rTrue:
					copyMemberships(c.t, c.comps[0])
				default:
					lc, lok := singleComp(c, 0)
					rc, rok := singleComp(c, 1)
					if !lok || !rok || lc != rc {
						entangled = &entangleError{op: "intersection of subqueries uncertain in distinct components"}
						break
					}
					for a := range c.comps[0][lc] {
						if c.comps[1][rc][a] {
							out.slot(lc, e.arity[lc], a).Insert(c.t)
						}
					}
				}
				continue
			}
			// Difference L − R.
			if !presentL {
				continue
			}
			if isTrue(c, 1) {
				continue // always in R, never in the difference
			}
			if !presentR {
				if isTrue(c, 0) {
					out.cert.Insert(c.t)
				} else {
					copyMemberships(c.t, c.comps[0])
				}
				continue
			}
			// R is strictly uncertain: ¬R is a conjunction across R's
			// components, additive only within a single one.
			rc, rok := singleComp(c, 1)
			if !rok {
				entangled = &entangleError{op: "difference against a subquery uncertain in several components"}
				break
			}
			switch {
			case isTrue(c, 0):
				for a := 0; a < e.arity[rc]; a++ {
					if !c.comps[1][rc][a] {
						out.slot(rc, e.arity[rc], a).Insert(c.t)
					}
				}
			default:
				lc, lok := singleComp(c, 0)
				if !lok || lc != rc {
					entangled = &entangleError{op: "difference of subqueries uncertain in distinct components"}
				} else {
					for a := range c.comps[0][lc] {
						if !c.comps[1][rc][a] {
							out.slot(lc, e.arity[lc], a).Insert(c.t)
						}
					}
				}
			}
		}
		if entangled != nil {
			break
		}
	}
	if entangled != nil {
		return nil, entangled
	}
	return out, nil
}

// evalChoice implements χ_U. On a certain answer — identical in every
// world — each world branches into one world per distinct U-group:
// exactly a fresh independent component whose alternatives are the
// groups. An uncertain answer would need the new component's refinement
// to stay correlated with existing choices, which the independent
// product cannot express — entangled.
func (e *engine) evalChoice(n *wsa.Choice, outSchema relation.Schema) (*frel, error) {
	sub, err := e.eval(n.From)
	if err != nil {
		return nil, err
	}
	if len(sub.uncertainComps()) > 0 {
		return nil, &entangleError{op: "choice-of over an uncertain answer"}
	}
	if sub.cert.Empty() {
		// Empty answer: every world survives with the empty answer.
		return newFrel(outSchema), nil
	}
	idx, err := sub.schema.Indexes(n.Attrs)
	if err != nil {
		return nil, err
	}
	groups := relation.NewGroupMap(idx, sub.cert.Len())
	sub.cert.Each(func(t relation.Tuple) { groups.Add(t) })
	gs := append([]*relation.Group{}, groups.Groups()...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key.Less(gs[j].Key) })
	c := e.addComponent(len(gs))
	out := newFrel(outSchema)
	for a, g := range gs {
		p := relation.New(outSchema)
		for _, t := range g.Rows {
			p.InsertDistinct(t)
		}
		out.setPart(c, len(gs), a, p)
	}
	return out, nil
}

// evalClose implements poss and cert as component-local scans, in
// O(size) regardless of the world count: poss is the union of all
// pieces; a tuple is certain iff it is certain already or some
// component contributes it under every alternative. Components scan in
// parallel into per-component cells; the merge walks them in component
// order.
func (e *engine) evalClose(n *wsa.Close, outSchema relation.Schema) (*frel, error) {
	sub, err := e.eval(n.From)
	if err != nil {
		return nil, err
	}
	comps := sub.compIDs()
	partial := make([]*relation.Relation, len(comps))
	relation.ParallelChunks(len(comps), relation.NumParts(sub.size()), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c := comps[i]
			acc := relation.New(outSchema)
			if n.Kind == wsa.ClosePoss {
				for _, p := range sub.parts[c] {
					if p != nil {
						p.Each(func(t relation.Tuple) { acc.Insert(t) })
					}
				}
			} else {
				// Tuples contributed by every alternative of c.
				alts := sub.parts[c]
				covered := e.arity[c] > 0
				for _, p := range alts {
					if p == nil || p.Len() == 0 {
						covered = false
						break
					}
				}
				if covered {
					alts[0].Each(func(t relation.Tuple) {
						for _, p := range alts[1:] {
							if !p.Contains(t) {
								return
							}
						}
						acc.Insert(t)
					})
				}
			}
			partial[i] = acc
		}
	})
	out := newFrel(outSchema)
	sub.cert.Each(func(t relation.Tuple) { out.cert.Insert(t) })
	for _, acc := range partial {
		acc.Each(func(t relation.Tuple) { out.cert.Insert(t) })
	}
	return out, nil
}

// evalGroup implements pγ^V_U and cγ^V_U. A certain answer puts every
// world in one group whose aggregate is the answer's projection. When
// the answer depends on exactly one component, both the group signature
// and the aggregate are functions of that component's choice: compute
// the signature per alternative, aggregate per signature class, and
// emit the class aggregate as the alternative's part. Answers depending
// on several components entangle.
func (e *engine) evalGroup(n *wsa.Group, outSchema relation.Schema) (*frel, error) {
	sub, err := e.eval(n.From)
	if err != nil {
		return nil, err
	}
	gIdx, err := sub.schema.Indexes(n.GroupBy)
	if err != nil {
		return nil, err
	}
	proj := n.ProjOrAll(sub.schema)
	pIdx, err := sub.schema.Indexes(proj)
	if err != nil {
		return nil, err
	}
	uc := sub.uncertainComps()
	if len(uc) == 0 {
		out := newFrel(outSchema)
		out.cert = sub.cert.Project(pIdx, outSchema)
		return out, nil
	}
	if len(uc) > 1 {
		return nil, &entangleError{op: "group-worlds-by over an answer uncertain in several components"}
	}
	c := uc[0]
	m := e.arity[c]
	gSchema := relation.NewSchema(n.GroupBy...)
	sigs := make([]string, m)
	projs := make([]*relation.Relation, m)
	relation.ParallelChunks(m, relation.NumParts(sub.size()), func(_, lo, hi int) {
		for a := lo; a < hi; a++ {
			w := sub.cert.Clone()
			if p := sub.part(c, a); p != nil {
				p.Each(func(t relation.Tuple) { w.Insert(t) })
			}
			sigs[a] = w.Project(gIdx, gSchema).ContentKey()
			projs[a] = w.Project(pIdx, outSchema)
		}
	})
	// Aggregate per signature class, in first-alternative order.
	agg := map[string]*relation.Relation{}
	for a := 0; a < m; a++ {
		cur, ok := agg[sigs[a]]
		if !ok {
			agg[sigs[a]] = projs[a]
			continue
		}
		if n.Kind == wsa.GroupPoss {
			projs[a].Each(func(t relation.Tuple) { cur.Insert(t) })
		} else {
			next := relation.New(outSchema)
			cur.Each(func(t relation.Tuple) {
				if projs[a].Contains(t) {
					next.Insert(t)
				}
			})
			agg[sigs[a]] = next
		}
	}
	out := newFrel(outSchema)
	for a := 0; a < m; a++ {
		out.setPart(c, m, a, agg[sigs[a]])
	}
	return out, nil
}

// evalRepair implements repair-by-key on a certain answer — the §2
// census view: every key group with several candidate tuples becomes a
// fresh independent component with one single-tuple alternative per
// candidate; singleton groups stay certain. The construction is linear
// in the answer and represents ∏ |group| worlds. Uncertain answers
// would need per-world key groups — entangled (the fallback runs the
// reference evaluator, since the physical engine cannot repair).
func (e *engine) evalRepair(n *wsa.RepairKey, outSchema relation.Schema) (*frel, error) {
	sub, err := e.eval(n.From)
	if err != nil {
		return nil, err
	}
	if len(sub.uncertainComps()) > 0 {
		return nil, &entangleError{op: "repair-by-key over an uncertain answer"}
	}
	idx, err := sub.schema.Indexes(n.Attrs)
	if err != nil {
		return nil, err
	}
	groups := relation.NewGroupMap(idx, sub.cert.Len())
	sub.cert.Each(func(t relation.Tuple) { groups.Add(t) })
	gs := append([]*relation.Group{}, groups.Groups()...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key.Less(gs[j].Key) })
	out := newFrel(outSchema)
	for _, g := range gs {
		if len(g.Rows) == 1 {
			out.cert.Insert(g.Rows[0])
			continue
		}
		rows := append([]relation.Tuple{}, g.Rows...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].Less(rows[j]) })
		c := e.addComponent(len(rows))
		for a, t := range rows {
			p := relation.New(outSchema)
			p.InsertDistinct(t)
			out.setPart(c, len(rows), a, p)
		}
	}
	return out, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
