package wsdexec

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"time"

	"worldsetdb/internal/datagen"
	"worldsetdb/internal/ra"
	"worldsetdb/internal/relation"
	"worldsetdb/internal/wsa"
	"worldsetdb/internal/wsd"
)

func repairQuery(close wsa.CloseKind) wsa.Expr {
	return &wsa.Close{Kind: close,
		From: &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}}
}

// TestCensusRepair2p40 is the engine's reason to exist: certain and
// possible answers over the census-repair view with 2^40 repairs,
// computed natively on the decomposition — no enumeration — in well
// under the 100ms budget.
func TestCensusRepair2p40(t *testing.T) {
	census := datagen.Census(2000, 40, 7)
	db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
	budget := 100 * time.Millisecond
	if raceEnabled {
		budget *= 10
	}
	want := new(big.Int).Lsh(big.NewInt(1), 40)

	var certLen, possLen int
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		outC, planC, err := EvalOpts(repairQuery(wsa.CloseCert), db, &Options{NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		outP, planP, err := EvalOpts(repairQuery(wsa.ClosePoss), db, &Options{NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
		if !planC.Native || !planP.Native {
			t.Fatalf("plans not native: cert=%v poss=%v", planC, planP)
		}
		if got := outC.Worlds(); got.Cmp(want) != 0 {
			t.Fatalf("output worlds = %s, want 2^40", got)
		}
		certLen = outC.Certain[1].Len()
		possLen = outP.Certain[1].Len()
	}
	if certLen != census.Len()-2*40 {
		t.Errorf("certain tuples = %d, want %d", certLen, census.Len()-2*40)
	}
	if possLen != census.Len() {
		t.Errorf("possible tuples = %d, want %d (every input tuple)", possLen, census.Len())
	}
	if best > budget {
		t.Errorf("cert+poss over 2^40 repairs took %s, want under %s", best, budget)
	}
	t.Logf("cert+poss over 2^40 repairs: %s (budget %s)", best, budget)
}

// TestNativeAgainstReference pins the native paths to the Figure 3
// semantics on expandable decompositions: evaluate on the
// decomposition, expand, and compare world-sets with the reference
// evaluator run on the expanded input.
func TestNativeAgainstReference(t *testing.T) {
	census := datagen.PaperCensus()
	db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
	queries := []wsa.Expr{
		&wsa.Rel{Name: "Census"},
		repairQuery(wsa.CloseCert),
		repairQuery(wsa.ClosePoss),
		&wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}},
		&wsa.Select{Pred: ra.Eq("POB", "POW"),
			From: &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}},
		&wsa.Project{Columns: []string{"Name"},
			From: &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}},
		&wsa.Choice{Attrs: []string{"POB"}, From: &wsa.Rel{Name: "Census"}},
		wsa.NewUnion(
			&wsa.Project{Columns: []string{"Name"}, From: &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}},
			&wsa.Project{Columns: []string{"Name"}, From: &wsa.Rel{Name: "Census"}}),
		wsa.NewDiff(
			&wsa.Project{Columns: []string{"Name"}, From: &wsa.Rel{Name: "Census"}},
			&wsa.Project{Columns: []string{"Name"}, From: &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}}),
		wsa.NewIntersect(
			&wsa.Project{Columns: []string{"Name"}, From: &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}},
			&wsa.Project{Columns: []string{"Name"}, From: &wsa.Rel{Name: "Census"}}),
	}
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := wsa.Eval(q, ws)
		if err != nil {
			t.Fatalf("reference failed for %s: %v", q, err)
		}
		out, plan, err := EvalOpts(q, db, &Options{NoFallback: true})
		if err != nil {
			t.Fatalf("wsdexec failed for %s: %v", q, err)
		}
		if !plan.Native {
			t.Fatalf("plan for %s not native: %v", q, plan)
		}
		got, err := out.Expand(0)
		if err != nil {
			t.Fatalf("expanding result of %s: %v", q, err)
		}
		if !got.EqualWorlds(want) {
			t.Fatalf("wsdexec disagrees with reference for %s\ngot:\n%s\nwant:\n%s", q, got, want)
		}
	}
}

// TestGroupWorldsBySingleComponent: group-worlds-by stays native when
// the answer's uncertainty lives in one component (a single key
// violation), aggregating per alternative without touching worlds.
func TestGroupWorldsBySingleComponent(t *testing.T) {
	census := datagen.Census(8, 1, 5) // one duplicated SSN: one component
	db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	repair := &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}
	for _, q := range []wsa.Expr{
		wsa.NewPossGroup([]string{"POB"}, []string{"Name"}, repair),
		wsa.NewCertGroup([]string{"POB"}, []string{"Name"}, repair),
	} {
		want, err := wsa.Eval(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		out, plan, err := EvalOpts(q, db, &Options{NoFallback: true, NoRewrite: true})
		if err != nil {
			t.Fatalf("wsdexec failed for %s: %v", q, err)
		}
		if !plan.Native {
			t.Fatalf("plan for %s not native: %v", q, plan)
		}
		got, err := out.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualWorlds(want) {
			t.Fatalf("wsdexec disagrees with reference for %s\ngot:\n%s\nwant:\n%s", q, got, want)
		}
	}
}

// TestGroupWorldsByMultiComponentMerges: with two key violations the
// group signature depends on two independent choices — the engine must
// merge exactly those components, stay native, and still agree.
func TestGroupWorldsByMultiComponentMerges(t *testing.T) {
	census := datagen.PaperCensus()
	db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	repair := &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}
	q := wsa.NewPossGroup([]string{"POB"}, []string{"Name"}, repair)
	out, plan, err := EvalOpts(q, db, &Options{NoRewrite: true, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Native || len(plan.Merges) == 0 {
		t.Fatalf("expected a native plan with a recorded merge, got %v", plan)
	}
	if plan.MergeCost < 2 {
		t.Fatalf("merge cost must reflect the merged alternatives, got plan %v", plan)
	}
	want, err := wsa.Eval(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualWorlds(want) {
		t.Fatalf("merged evaluation disagrees with reference\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEntangledFallback: a self-join of the repaired relation pairs
// tuples across key groups — genuinely entangling two components. With
// merging disabled the engine must record a fallback (with component
// detail) and still agree with the reference; with merging it must stay
// native and agree too.
func TestEntangledFallback(t *testing.T) {
	census := datagen.PaperCensus()
	db := wsd.FromComplete([]string{"Census"}, []*relation.Relation{census})
	repair := &wsa.RepairKey{Attrs: []string{"SSN"}, From: &wsa.Rel{Name: "Census"}}
	left := &wsa.Project{Columns: []string{"Name"}, From: repair}
	right := &wsa.Rename{Pairs: []ra.RenamePair{{From: "Name", To: "Name2"}},
		From: &wsa.Project{Columns: []string{"Name"}, From: repair}}
	q := wsa.NewProduct(left, right)

	if _, _, err := EvalOpts(q, db, &Options{NoFallback: true, NoMerge: true}); err == nil {
		t.Fatal("expected an entanglement error with fallback and merging disabled")
	}
	ws, err := db.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wsa.Eval(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	check := func(out *wsd.DecompDB, label string) {
		t.Helper()
		got, err := out.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualWorlds(want) {
			t.Fatalf("%s result disagrees with reference\ngot:\n%s\nwant:\n%s", label, got, want)
		}
	}

	out, plan, err := EvalOpts(q, db, &Options{NoMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Native || plan.FallbackOp == "" || plan.FallbackEngine == "" {
		t.Fatalf("expected a recorded fallback, got plan %v", plan)
	}
	if len(plan.FallbackComponents) == 0 {
		t.Fatalf("fallback plan must name the entangled components, got %v", plan)
	}
	check(out, "fallback")

	out, plan, err = Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Native || len(plan.Merges) == 0 {
		t.Fatalf("expected a native merged plan, got %v", plan)
	}
	check(out, "merged")
}

// TestFallbackRefusedBeyondBudget: when an entangling query meets an
// input too large to enumerate, the error carries the typed budget
// refusal instead of silently exploding.
func TestFallbackRefusedBeyondBudget(t *testing.T) {
	census := datagen.Census(200, 40, 7)
	d, err := wsd.RepairByKey("Clean", census, []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	db := wsd.FromWSD(d)
	// choice-of over the (uncertain) repaired relation entangles.
	q := &wsa.Choice{Attrs: []string{"POB"}, From: &wsa.Rel{Name: "Clean"}}
	_, _, err = Eval(q, db)
	if err == nil {
		t.Fatal("expected an error: entangled query over 2^40 worlds")
	}
	if !strings.Contains(err.Error(), "exceed the expansion budget") {
		t.Fatalf("error %v does not carry the budget refusal", err)
	}
}

// TestEvalWorldSetMultiWorld: the registered engine entry lifts
// multi-world inputs into the trivial one-component decomposition and
// still agrees with the reference on the single-component native paths.
func TestEvalWorldSetMultiWorld(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	names := []string{"R", "S"}
	schemas := []relation.Schema{relation.NewSchema("A", "B"), relation.NewSchema("C")}
	queries := []wsa.Expr{
		wsa.NewCert(&wsa.Project{Columns: []string{"A"}, From: &wsa.Rel{Name: "R"}}),
		wsa.NewPoss(&wsa.Select{Pred: ra.Eq("A", "B"), From: &wsa.Rel{Name: "R"}}),
		wsa.NewPossGroup([]string{"A"}, []string{"B"}, &wsa.Rel{Name: "R"}),
		wsa.NewIntersect(
			&wsa.Project{Columns: []string{"A"}, From: &wsa.Rel{Name: "R"}},
			&wsa.Rename{Pairs: []ra.RenamePair{{From: "C", To: "A"}}, From: &wsa.Rel{Name: "S"}}),
	}
	for i := 0; i < 25; i++ {
		ws := datagen.RandomWorldSet(rng, names, schemas, 3, 3, 4)
		for _, q := range queries {
			want, err := wsa.Eval(q, ws)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvalWorldSet(q, ws)
			if err != nil {
				t.Fatalf("wsdexec failed for %s on %s: %v", q, ws, err)
			}
			if !got.EqualWorlds(want) {
				t.Fatalf("wsdexec disagrees with reference for %s\ninput:\n%s\ngot:\n%s\nwant:\n%s", q, ws, got, want)
			}
		}
	}
}
